// Package core assembles the full ProRace pipeline of the paper's Figure 1:
//
//	online:  machine run + PMU driver  →  PEBS + PT + sync traces
//	offline: decode & synthesis → memory reconstruction → FastTrack
//
// It also implements the §5.1 safety feedback: when a race is detected on a
// location whose reconstruction relied on emulated memory, the trace is
// regenerated with that location invalidated, so reconstruction never
// depends on racy emulated state.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"prorace/internal/faultinject"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/witness"
)

// TraceOptions configures the online phase.
type TraceOptions struct {
	// Kind selects the PEBS driver model (ProRace or Vanilla).
	Kind driver.Kind
	// Period is the PEBS sampling period.
	Period uint64
	// Seed drives the machine scheduler and the driver's randomised first
	// period; a given (program, seed) pair reproduces exactly.
	Seed int64
	// EnablePT turns on control-flow tracing.
	EnablePT bool
	// MeasureOverhead additionally executes an untraced baseline run with
	// the same seed, so Overhead can be reported.
	MeasureOverhead bool
	// Machine overrides simulator parameters (cores, I/O latencies...).
	// Seed and Tracer fields are managed by TraceProgram.
	Machine machine.Config
	// Costs overrides the driver cost model (nil = calibrated defaults).
	Costs *driver.Costs
	// DisableRandomFirstPeriod turns off the ProRace driver's sampling
	// phase randomisation (ablation).
	DisableRandomFirstPeriod bool
	// WrapTracer, when set, wraps the PMU driver before it is installed as
	// the machine's tracer. The wrapper must delegate every callback to the
	// driver (preserving its returned stall cycles unchanged) so the traced
	// execution is bit-identical to an unwrapped run; it may observe the
	// full event stream on the way through. The ground-truth oracle
	// (internal/oracle) uses this to record every memory access of the
	// very execution whose sampled trace the pipeline analyzes.
	WrapTracer func(machine.Tracer) machine.Tracer
	// Telemetry receives the online phase's prorace_driver_* series and a
	// "trace" stage span. Nil falls back to the process-wide default
	// registry (telemetry.Default), which is itself nil unless a command
	// enabled it — the zero-overhead disabled state.
	Telemetry *telemetry.Registry
	// MetricsAddr, when non-empty, guarantees a live telemetry HTTP
	// listener on that address for the run (see WithMetricsAddr).
	MetricsAddr string
}

// TraceResult is the outcome of the online phase.
type TraceResult struct {
	Trace       *tracefmt.Trace
	TracedStats machine.Stats
	// BaseStats is only valid when MeasureOverhead was set.
	BaseStats machine.Stats
	// Overhead is traced/base - 1 (0 when not measured).
	Overhead float64
	// Dropped and Throttled report the kernel-side sample losses.
	Dropped   uint64
	Throttled uint64
}

// TraceProgram runs the online phase: execute the program on the simulated
// machine under the selected driver and collect the three traces.
func TraceProgram(p *prog.Program, opts TraceOptions) (*TraceResult, error) {
	if opts.Period == 0 {
		opts.Period = 10000
	}
	tel, telErr := resolveTelemetry(opts.Telemetry, opts.MetricsAddr)
	if telErr != nil {
		return nil, telErr
	}
	span := tel.StartSpan("trace")
	defer span.End()
	res := &TraceResult{}

	if opts.MeasureOverhead {
		mcfg := opts.Machine
		mcfg.Seed = opts.Seed
		mcfg.Tracer = nil
		base := machine.New(p, mcfg)
		st, err := base.Run()
		if err != nil {
			return nil, fmt.Errorf("core: baseline run: %w", err)
		}
		res.BaseStats = st
	}

	mcfg := opts.Machine
	mcfg.Seed = opts.Seed
	mcfg.Tracer = nil
	mac := machine.New(p, mcfg)
	d := driver.New(mac, driver.Options{
		Kind:                     opts.Kind,
		Period:                   opts.Period,
		Seed:                     opts.Seed,
		EnablePT:                 opts.EnablePT,
		Costs:                    opts.Costs,
		DisableRandomFirstPeriod: opts.DisableRandomFirstPeriod,
		Telemetry:                tel,
	})
	tracer := machine.Tracer(d)
	if opts.WrapTracer != nil {
		tracer = opts.WrapTracer(tracer)
	}
	mac.SetTracer(tracer)
	st, err := mac.Run()
	if err != nil {
		return nil, fmt.Errorf("core: traced run: %w", err)
	}
	res.TracedStats = st
	res.Trace = d.Finish()
	res.Dropped = d.DroppedSamples()
	res.Throttled = d.ThrottledEvents()
	if opts.MeasureOverhead && res.BaseStats.Cycles > 0 {
		res.Overhead = float64(st.Cycles)/float64(res.BaseStats.Cycles) - 1
	}
	return res, nil
}

// AnalysisOptions configures the offline phase.
type AnalysisOptions struct {
	// Mode selects the reconstruction algorithm (default ForwardBackward —
	// full ProRace).
	Mode replay.Mode
	// Workers fans PT decoding/synthesis and replay reconstruction out
	// across a worker pool, streaming each thread's reconstructed accesses
	// into detection as the thread completes (§7.6): 0 = fully sequential,
	// <0 = GOMAXPROCS, n > 0 = n workers. Results are identical to the
	// sequential analysis.
	Workers int
	// DetectShards partitions the detector's per-variable state across
	// shard workers by address hash, parallelising the detect phase:
	// 0 or 1 = sequential FastTrack, <0 = GOMAXPROCS, n > 1 = n shards.
	// The reported race set is identical at any shard count.
	DetectShards int
	// DetectWorkers bounds the goroutines multiplexing the detection
	// shards (shards are CAS-claimed stripes, so N shards can share M <
	// N workers): 0 = one per shard up to GOMAXPROCS. Ignored without
	// sharded detection. Results are identical at any worker count.
	DetectWorkers int
	// ShadowCapacityHint pre-sizes the detector's shadow table for the
	// expected number of distinct variables (addresses × allocation
	// generations), avoiding growth-and-reinsert cycles on large traces.
	// 0 starts small and grows; the hint never changes results.
	ShadowCapacityHint int
	// DisableMemoryEmulation turns off the §5.1 program-map memory
	// emulation (ablation).
	DisableMemoryEmulation bool
	// DisableRaceFeedback turns off the §5.1 invalidate-and-regenerate
	// loop for racy emulated locations (ablation; slightly faster,
	// slightly less safe).
	DisableRaceFeedback bool
	// DisableAllocationTracking turns off malloc/free generation tracking
	// (ablation; reintroduces the §4.3 address-reuse false positive).
	DisableAllocationTracking bool
	// MaxReports bounds the race report list.
	MaxReports int
	// Strict makes the first decode or per-thread analysis error abort the
	// run. The default (false) is lenient: corrupt PT regions are skipped
	// via sync-point recovery, failing threads are dropped (their sync
	// records still contribute happens-before edges), and everything lost
	// is accounted in AnalysisResult.Degradation. On a clean trace the two
	// modes produce identical reports.
	Strict bool
	// FaultSpec, when non-nil, injects the described faults into a copy of
	// the trace before analysis — the test harness for the degradation
	// machinery. The original trace is never modified.
	FaultSpec *faultinject.Spec
	// ThreadRetries bounds retries of a per-thread stage that failed with
	// a transient error (0 means the default of 1; negative disables).
	ThreadRetries int
	// DecodeMaxSteps bounds each thread's PT decode (0 means the decoder's
	// large default). Lenient analyses of heavily corrupted streams use it
	// to keep resynced walks from wandering for millions of steps.
	DecodeMaxSteps int
	// PathCache overrides the decoded-path cache consulted before PT
	// decode + synthesis. nil selects a process-wide shared cache; set
	// DisablePathCache to opt out of memoization entirely. Cached entries
	// are keyed by (program, trace content fingerprint, decode options),
	// so a hit is byte-equivalent to a fresh decode.
	PathCache *synthesis.Cache
	// DisablePathCache turns off decoded-path memoization (ablation /
	// memory-constrained callers).
	DisablePathCache bool
	// Telemetry receives the offline phase's metric series and stage
	// spans, and its snapshot is attached to AnalysisResult.Telemetry.
	// Nil falls back to the process-wide default registry (nil unless a
	// command enabled it); instrumentation is allocation-free when no
	// registry is resolved.
	Telemetry *telemetry.Registry
	// MetricsAddr, when non-empty, guarantees a live telemetry HTTP
	// listener on that address for the run (see WithMetricsAddr).
	MetricsAddr string
	// SegmentSize, when > 0, routes the analysis through an Analyzer
	// session fed the trace in segments of at most this many serialised
	// bytes — the exerciser for the segment-resumable path. Results are
	// byte-identical to SegmentSize == 0 (the session re-concatenates
	// segments before decode); the knob exists so whole-trace callers and
	// tests cover the exact code path streaming ingest uses.
	SegmentSize int
	// Witnesses, when non-nil, attaches a deterministic reproduction to
	// every report: a replay-verified witness schedule (seed + forced
	// scheduler-decision prefix) is generated per race, serialized into
	// Report.Witness and summarised in AnalysisResult.Witnesses. Witness
	// generation re-executes the program a bounded number of times per
	// report; it never changes which races are reported.
	Witnesses *WitnessOptions
}

// threadRetries resolves the ThreadRetries knob.
func threadRetries(n int) int {
	switch {
	case n == 0:
		return 1
	case n < 0:
		return 0
	default:
		return n
	}
}

// AnalysisResult is the outcome of the offline phase.
type AnalysisResult struct {
	Reports []race.Report
	// RacyAddrs is the full set of addresses with at least one detected
	// race. Unlike Reports — which deduplicates by PC pair and is bounded
	// by MaxReports — this set is complete, so it is the right basis for
	// per-variable recall measurements (the oracle harness scores against
	// it) as well as the §5.1 feedback.
	RacyAddrs   map[uint64]bool
	ReplayStats replay.Stats
	// Accesses is the extended memory trace per thread.
	Accesses map[int32][]replay.Access
	// Phase timings for the paper's Figure 12 breakdown. With Workers > 1
	// reconstruction and detection overlap: ReconstructTime is the
	// reconstruction stage's wall clock and DetectTime the detection tail
	// beyond it, so the sum still tracks elapsed analysis time.
	DecodeTime      time.Duration
	ReconstructTime time.Duration
	DetectTime      time.Duration
	// Workers and DetectShards record the resolved parallelism the
	// analysis actually ran with (after GOMAXPROCS expansion).
	Workers      int
	DetectShards int
	// Segments is the number of trace segments the producing Analyzer
	// session accepted (0 for a plain whole-trace Analyze).
	Segments int
	// Regenerated is true when the §5.1 feedback loop re-ran
	// reconstruction with racy locations invalidated.
	Regenerated bool
	// DecodeCacheHit is true when decode + synthesis were served from the
	// decoded-path cache instead of being recomputed.
	DecodeCacheHit bool
	// Degradation accounts everything a lenient analysis had to give up
	// (zero-valued on a clean strict or lenient run).
	Degradation Degradation
	// Telemetry is the metrics registry's snapshot taken as the analysis
	// finished — counters, gauges, histograms and completed stage spans.
	// Nil when the analysis ran without telemetry. When analyses share a
	// registry (the cmds' process-wide default), counters accumulate
	// across runs and the snapshot reflects the registry, not one run.
	Telemetry *telemetry.Snapshot
	// Witnesses holds one generation outcome per report (parallel to
	// Reports), populated only when AnalysisOptions.Witnesses was set.
	// A nil Outcome.Witness means no reproduction was found in budget.
	Witnesses []*witness.Outcome
}

// TotalTime is the full offline analysis duration.
func (r *AnalysisResult) TotalTime() time.Duration {
	return r.DecodeTime + r.ReconstructTime + r.DetectTime
}

// workerCount resolves the Workers knob: 0 means sequential (one worker),
// negative means GOMAXPROCS.
func workerCount(n int) int {
	if n == 0 {
		return 1
	}
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// shardCount resolves the DetectShards knob with the same convention
// (0 and 1 both mean the sequential detector).
func shardCount(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// defaultPathCache is the process-wide decoded-path cache used when
// AnalysisOptions names no explicit one. Bounded small: entries hold
// decoded paths, the dominant per-trace memory cost.
var defaultPathCache = synthesis.NewCache(synthesis.DefaultCacheCapacity)

// pathCacheFor resolves the cache knobs: nil means memoization is off.
func pathCacheFor(opts *AnalysisOptions) *synthesis.Cache {
	if opts.DisablePathCache {
		return nil
	}
	if opts.PathCache != nil {
		return opts.PathCache
	}
	return defaultPathCache
}

// newReportSink picks the detector for the resolved shard count: the
// address-sharded parallel detector above 1, sequential FastTrack at 1.
func newReportSink(shards int, ropts race.Options) race.ReportSink {
	if shards > 1 {
		return race.NewShardedDetector(shards, ropts)
	}
	return race.NewDetector(ropts)
}

// Analyze runs the offline phase over a collected trace. It is the single
// entry point for both sequential and parallel analysis: Workers fans out
// synthesis and reconstruction, DetectShards fans out detection. Unless
// opts.Strict is set, the analysis is fault-tolerant: corrupt trace
// regions and failing threads degrade the result (see Degradation) instead
// of aborting it.
func Analyze(p *prog.Program, tr *tracefmt.Trace, opts AnalysisOptions) (*AnalysisResult, error) {
	if opts.SegmentSize > 0 {
		return analyzeSegmented(p, tr, opts)
	}
	workers := workerCount(opts.Workers)
	shards := shardCount(opts.DetectShards)
	retries := threadRetries(opts.ThreadRetries)
	tel, telErr := resolveTelemetry(opts.Telemetry, opts.MetricsAddr)
	if telErr != nil {
		return nil, telErr
	}
	span := tel.StartSpan("analyze")
	defer span.End()
	res := &AnalysisResult{Workers: workers, DetectShards: shards}
	deg := &res.Degradation

	if opts.FaultSpec != nil && !opts.FaultSpec.Zero() {
		tr, _ = opts.FaultSpec.Apply(tr)
		deg.Injected = opts.FaultSpec.String()
	}

	// Screen out impossible thread IDs before anything indexes by TID.
	tr, sanErr := sanitizeTrace(tr, opts.Strict, deg)
	if sanErr != nil {
		return nil, sanErr
	}

	if workers > 1 {
		// Pre-warm the program's lazily built indexes (basic blocks,
		// function table) so concurrent readers never race on their
		// initialisation.
		p.Blocks()
		p.FuncContaining(p.Entry)
	}

	t0 := time.Now()
	spanDecode := tel.StartSpan("decode+synthesis")
	var tts map[int32]*synthesis.ThreadTrace
	var err error
	sopts := synthesis.Options{Lenient: !opts.Strict, MaxSteps: opts.DecodeMaxSteps}
	cache := pathCacheFor(&opts)
	var ckey synthesis.CacheKey
	if cache != nil {
		// Content-keyed, so a mutated copy (fault injection, salvage)
		// misses while a byte-identical re-analysis hits; the fingerprint
		// is computed on the sanitised trace the pipeline actually decodes.
		ckey = synthesis.CacheKey{Prog: p, Fingerprint: tr.Fingerprint(), Opts: sopts}
		if hit, ok := cache.Get(ckey); ok {
			tts = hit
			res.DecodeCacheHit = true
		}
	}
	if tts == nil {
		errsBefore := len(deg.ThreadErrors)
		if workers > 1 {
			tts, err = synthesizeParallel(p, tr, workers, sopts, opts.Strict, retries, deg)
		} else {
			tts, err = synthesizeGuarded(p, tr, sopts, opts.Strict, retries, deg)
		}
		if err != nil {
			return nil, fmt.Errorf("core: synthesis: %w", err)
		}
		// Only a fully successful synthesis is cached: a run that dropped
		// threads must re-record those drops in every analysis's
		// Degradation, which a hit would silently skip.
		if cache != nil && len(deg.ThreadErrors) == errsBefore {
			cache.Put(ckey, tts)
		}
	}
	spanDecode.End()
	res.DecodeTime = time.Since(t0)
	publishSynthesis(tel, tts, res.DecodeCacheHit)

	// Account what decoding gave up, and check the sync log's invariants:
	// dropped sync records silently widen happens-before (edges can only
	// disappear, so races are over- not under-reported) — surface that.
	collectDecodeDegradation(tts, deg)
	_, ptBytes, _ := tr.Sizes()
	deg.PTBytesTotal = ptBytes
	gaps := synctrace.AnalyzeLog(tr.Sync)
	deg.SyncAnomalies = gaps.Anomalies()

	ropts := race.Options{
		TrackAllocations:   !opts.DisableAllocationTracking,
		MaxReports:         opts.MaxReports,
		Telemetry:          tel,
		Workers:            opts.DetectWorkers,
		ShadowCapacityHint: opts.ShadowCapacityHint,
	}
	engine := replay.NewEngine(p, replay.Config{Mode: opts.Mode, Telemetry: tel})
	if opts.DisableMemoryEmulation {
		engine = engine.DisableMemoryEmulation()
	}

	var (
		accesses map[int32][]replay.Access
		det      race.ReportSink
	)
	if workers > 1 {
		spanStream := tel.StartSpan("reconstruct+detect")
		var rstats replay.Stats
		var reconT, detT time.Duration
		var terrs []*ThreadError
		accesses, rstats, det, reconT, detT, terrs = streamPass(engine, tts, tr.Sync, workers, shards, ropts, retries)
		spanStream.End()
		if err := absorbThreadErrors(terrs, opts.Strict, deg); err != nil {
			return nil, err
		}
		res.ReplayStats = rstats
		res.ReconstructTime, res.DetectTime = reconT, detT
	} else {
		t1 := time.Now()
		spanRecon := tel.StartSpan("reconstruct")
		var rstats replay.Stats
		var terrs []*ThreadError
		accesses, rstats, terrs = reconstructGuarded(engine, tts, retries)
		spanRecon.End()
		if err := absorbThreadErrors(terrs, opts.Strict, deg); err != nil {
			return nil, err
		}
		res.ReconstructTime = time.Since(t1)
		res.ReplayStats = rstats

		t2 := time.Now()
		spanDetect := tel.StartSpan("detect")
		det = newReportSink(shards, ropts)
		race.Feed(det, tr.Sync, accesses)
		det.Finish()
		spanDetect.End()
		res.DetectTime = time.Since(t2)
	}

	// §5.1 feedback: if races were found and reconstruction used memory
	// emulation, regenerate the trace with the racy locations invalidated
	// so no reconstructed address depended on racy emulated memory, then
	// detect again.
	if !opts.DisableRaceFeedback && opts.Mode != replay.ModeBasicBlock &&
		!opts.DisableMemoryEmulation && len(det.RacyAddrSet()) > 0 {
		spanFeedback := tel.StartSpan("feedback")
		engine2 := replay.NewEngine(p, replay.Config{Mode: opts.Mode, InvalidAddrs: det.RacyAddrSet(), Telemetry: tel})
		if workers > 1 {
			// The streamed pass detects while it reconstructs; adopt its
			// output only when the invalidation actually changed the trace.
			accesses2, rstats2, det2, reconT2, detT2, terrs2 := streamPass(engine2, tts, tr.Sync, workers, shards, ropts, retries)
			if err := absorbThreadErrors(terrs2, opts.Strict, deg); err != nil {
				return nil, err
			}
			res.ReconstructTime += reconT2
			if rstats2.InvalidHits > 0 {
				res.DetectTime += detT2
				det = det2
				res.ReplayStats = rstats2
				accesses = accesses2
				res.Regenerated = true
			}
		} else {
			t1b := time.Now()
			accesses2, rstats2, terrs2 := reconstructGuarded(engine2, tts, retries)
			if err := absorbThreadErrors(terrs2, opts.Strict, deg); err != nil {
				return nil, err
			}
			res.ReconstructTime += time.Since(t1b)
			if rstats2.InvalidHits > 0 {
				t2b := time.Now()
				det2 := newReportSink(shards, ropts)
				race.Feed(det2, tr.Sync, accesses2)
				det2.Finish()
				res.DetectTime += time.Since(t2b)
				det = det2
				res.ReplayStats = rstats2
				accesses = accesses2
				res.Regenerated = true
			}
		}
		spanFeedback.End()
	}

	res.Accesses = accesses
	res.Reports = det.Reports()
	res.RacyAddrs = det.RacyAddrSet()
	flagGapAdjacent(res, tts, gaps, deg)
	if opts.Witnesses != nil && opts.Witnesses.Spec.Kind != "" {
		spanWitness := tel.StartSpan("witness")
		attachWitnesses(p, tr, res, opts.Witnesses)
		spanWitness.End()
	}
	publishAnalysis(tel, res)
	res.Telemetry = tel.Snapshot()
	return res, nil
}

// analyzeSegmented honours AnalysisOptions.SegmentSize: split the trace
// into serialised chunks of at most that many bytes and drive them through
// an Analyzer session — the same path streamed ingest takes.
func analyzeSegmented(p *prog.Program, tr *tracefmt.Trace, opts AnalysisOptions) (*AnalysisResult, error) {
	n := int((tr.TotalBytes() + uint64(opts.SegmentSize) - 1) / uint64(opts.SegmentSize))
	if n < 1 {
		n = 1
	}
	a, err := NewAnalyzer(p, opts) // clears SegmentSize for the session's rounds
	if err != nil {
		return nil, err
	}
	for _, seg := range tr.Split(n) {
		if err := a.Feed(seg); err != nil {
			return nil, err
		}
	}
	return a.Finish()
}

// synthesizeGuarded is the sequential synthesis pass with per-thread error
// isolation: a failing or panicking thread is dropped in lenient mode
// (recorded in deg), and aborts in strict mode.
func synthesizeGuarded(p *prog.Program, tr *tracefmt.Trace, sopts synthesis.Options, strict bool, retries int, deg *Degradation) (map[int32]*synthesis.ThreadTrace, error) {
	out := map[int32]*synthesis.ThreadTrace{}
	for _, tid := range tr.TIDs() {
		tid := tid
		var tt *synthesis.ThreadTrace
		te := runWithRetry(tid, "synthesis", retries, func() error {
			var err error
			tt, err = synthesis.SynthesizeThreadWith(p, tr, tid, sopts)
			return err
		})
		if te != nil {
			if strict {
				return nil, te
			}
			deg.recordThreadError(te)
			continue
		}
		out[tid] = tt
	}
	return out, nil
}

// reconstructGuarded is the sequential reconstruction pass with per-thread
// error isolation; failures are returned for the caller to absorb or
// abort on.
func reconstructGuarded(engine *replay.Engine, tts map[int32]*synthesis.ThreadTrace, retries int) (map[int32][]replay.Access, replay.Stats, []*ThreadError) {
	out := make(map[int32][]replay.Access, len(tts))
	var agg replay.Stats
	var terrs []*ThreadError
	for tid, tt := range tts {
		tid, tt := tid, tt
		var acc []replay.Access
		var st replay.Stats
		te := runWithRetry(tid, "reconstruct", retries, func() error {
			acc, st = engine.ReconstructThread(tt)
			return nil
		})
		if te != nil {
			terrs = append(terrs, te)
			continue
		}
		out[tid] = acc
		agg.Merge(st)
	}
	return out, agg, terrs
}

// absorbThreadErrors applies the strictness policy to a batch of isolated
// failures: strict returns the first as the run's error, lenient records
// them as degradation.
func absorbThreadErrors(terrs []*ThreadError, strict bool, deg *Degradation) error {
	if len(terrs) == 0 {
		return nil
	}
	// Worker pools surface failures in completion order; sort by thread so
	// the recorded (or returned) errors are deterministic.
	sort.Slice(terrs, func(i, j int) bool { return terrs[i].TID < terrs[j].TID })
	if strict {
		return terrs[0]
	}
	for _, te := range terrs {
		deg.recordThreadError(te)
	}
	return nil
}

// collectDecodeDegradation aggregates per-thread decode damage into the
// run's Degradation.
func collectDecodeDegradation(tts map[int32]*synthesis.ThreadTrace, deg *Degradation) {
	for _, tt := range tts {
		if tt.Path != nil {
			deg.CorruptPTPackets += tt.Path.CorruptPackets
			deg.DecodeGaps += len(tt.Path.Gaps)
			deg.PTBytesSkipped += uint64(tt.Path.SkippedBytes())
		}
		deg.UnpinnedSamples += len(tt.UnpinnedSamples)
	}
}

// flagGapAdjacent marks reports touching a degraded thread — a thread with
// decode gaps, an isolated failure, or sync-log anomalies — so analysts
// know which races may be artifacts of widened happens-before.
func flagGapAdjacent(res *AnalysisResult, tts map[int32]*synthesis.ThreadTrace, gaps *synctrace.GapReport, deg *Degradation) {
	degTIDs := map[int32]bool{}
	for _, tid := range deg.DroppedThreads {
		degTIDs[tid] = true
	}
	for tid, tt := range tts {
		if tt.Path != nil && tt.Path.Degraded() {
			degTIDs[tid] = true
		}
	}
	for _, tid := range gaps.Threads {
		degTIDs[tid] = true
	}
	if len(degTIDs) == 0 {
		return
	}
	for i := range res.Reports {
		r := &res.Reports[i]
		if degTIDs[r.First.TID] || degTIDs[r.Second.TID] {
			r.GapAdjacent = true
			deg.GapAdjacentRaces++
		}
	}
}

// Result bundles a full pipeline run.
type Result struct {
	TraceResult    *TraceResult
	AnalysisResult *AnalysisResult
}

// Run executes the complete pipeline: trace online, analyze offline.
func Run(p *prog.Program, topts TraceOptions, aopts AnalysisOptions) (*Result, error) {
	tr, err := TraceProgram(p, topts)
	if err != nil {
		return nil, err
	}
	ar, err := Analyze(p, tr.Trace, aopts)
	if err != nil {
		return nil, err
	}
	return &Result{TraceResult: tr, AnalysisResult: ar}, nil
}
