package core

import (
	"reflect"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/synthesis"
)

// racyTrace returns a trace of a bug workload dense enough to detect the
// planted race and drive the §5.1 invalidation/regeneration rounds.
func racyTrace(t *testing.T) (*bugs.Built, *TraceResult) {
	t.Helper()
	bug, err := bugs.ByID("mysql-3596")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 200, Seed: 4, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return built, tr
}

// mustMatch asserts two analyses are byte-identical where determinism is
// promised: the full report structs (order included), replay stats, and
// the per-thread access streams.
func mustMatch(t *testing.T, label string, want, got *AnalysisResult) {
	t.Helper()
	if !reflect.DeepEqual(want.Reports, got.Reports) {
		t.Fatalf("%s: reports differ:\nwant %+v\n got %+v", label, want.Reports, got.Reports)
	}
	if want.ReplayStats != got.ReplayStats {
		t.Fatalf("%s: replay stats differ:\nwant %+v\n got %+v", label, want.ReplayStats, got.ReplayStats)
	}
	if want.Regenerated != got.Regenerated {
		t.Fatalf("%s: regeneration behaviour differs", label)
	}
	if !reflect.DeepEqual(want.Accesses, got.Accesses) {
		t.Fatalf("%s: access streams differ", label)
	}
}

func TestPathCacheHitMatchesFreshDecode(t *testing.T) {
	built, tr := racyTrace(t)
	opts := AnalysisOptions{Mode: replay.ModeForwardBackward}

	noCache := opts
	noCache.DisablePathCache = true
	fresh, err := Analyze(built.Workload.Program, tr.Trace, noCache)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Reports) == 0 {
		t.Fatal("workload produced no races; the test needs detection plus regeneration")
	}
	if !fresh.Regenerated {
		t.Fatal("workload did not trigger §5.1 regeneration; pick a denser trace")
	}

	cached := opts
	cached.PathCache = synthesis.NewCache(2)
	first, err := Analyze(built.Workload.Program, tr.Trace, cached)
	if err != nil {
		t.Fatal(err)
	}
	if first.DecodeCacheHit {
		t.Error("first analysis through an empty cache cannot be a hit")
	}
	second, err := Analyze(built.Workload.Program, tr.Trace, cached)
	if err != nil {
		t.Fatal(err)
	}
	if !second.DecodeCacheHit {
		t.Error("second analysis of the identical trace should hit the cache")
	}
	if cached.PathCache.Hits() == 0 || cached.PathCache.Misses() == 0 {
		t.Errorf("counters: hits=%d misses=%d, want both nonzero",
			cached.PathCache.Hits(), cached.PathCache.Misses())
	}

	mustMatch(t, "cache-miss vs cache-off", fresh, first)
	mustMatch(t, "cache-hit vs cache-off", fresh, second)
}

// TestPathCacheEquivalenceAcrossParallelism re-analyses one racy trace —
// multi-round: detection feeds racy addresses back into reconstruction —
// under every {workers, shards} combination, cache on (warm) and off, and
// requires byte-identical reports throughout.
func TestPathCacheEquivalenceAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full parallelism sweep is slow")
	}
	built, tr := racyTrace(t)

	noCache := AnalysisOptions{Mode: replay.ModeForwardBackward, DisablePathCache: true}
	want, err := Analyze(built.Workload.Program, tr.Trace, noCache)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Regenerated {
		t.Fatal("reference analysis did not regenerate")
	}

	cache := synthesis.NewCache(2)
	for _, workers := range []int{0, 1, 4, 7} {
		for _, shards := range []int{0, 1, 4, 7} {
			opts := AnalysisOptions{
				Mode:    replay.ModeForwardBackward,
				Workers: workers, DetectShards: shards,
				PathCache: cache,
			}
			got, err := Analyze(built.Workload.Program, tr.Trace, opts)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			label := func(suffix string) string {
				return "workers=" + itoa(workers) + " shards=" + itoa(shards) + " " + suffix
			}
			mustMatch(t, label("cached"), want, got)

			off := opts
			off.PathCache = nil
			off.DisablePathCache = true
			cold, err := Analyze(built.Workload.Program, tr.Trace, off)
			if err != nil {
				t.Fatalf("workers=%d shards=%d uncached: %v", workers, shards, err)
			}
			mustMatch(t, label("uncached"), want, cold)
		}
	}
	if cache.Hits() == 0 {
		t.Error("the sweep never hit the warm cache")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestPathCacheSkipsDegradedSynthesis: a synthesis that dropped threads
// must not populate the cache — a later analysis has to re-record those
// drops in its own Degradation.
func TestPathCacheSkipsDegradedSynthesis(t *testing.T) {
	built, tr := racyTrace(t)

	// Corrupt one thread's PT stream so lenient synthesis degrades.
	damaged := *tr.Trace
	damaged.PT = map[int32][]byte{}
	for tid, stream := range tr.Trace.PT {
		damaged.PT[tid] = stream
	}
	for tid, stream := range damaged.PT {
		if len(stream) > 64 {
			bad := append([]byte(nil), stream...)
			for i := range bad {
				bad[i] ^= 0xA5
			}
			damaged.PT[tid] = bad
			break
		}
	}

	cache := synthesis.NewCache(2)
	opts := AnalysisOptions{Mode: replay.ModeForwardBackward, PathCache: cache}
	first, err := Analyze(built.Workload.Program, tr.Trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.DecodeCacheHit {
		t.Fatal("first clean analysis cannot hit")
	}
	ar1, err := Analyze(built.Workload.Program, &damaged, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ar1.DecodeCacheHit {
		t.Fatal("damaged trace must not hit the clean trace's entry")
	}
	ar2, err := Analyze(built.Workload.Program, &damaged, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Degradation accounting must be identical whether or not the second
	// analysis was served from cache; if the degraded synthesis was
	// cached, the ThreadError records would be missing here.
	if len(ar1.Degradation.ThreadErrors) != len(ar2.Degradation.ThreadErrors) {
		t.Fatalf("degradation differs across re-analysis: %d vs %d thread errors",
			len(ar1.Degradation.ThreadErrors), len(ar2.Degradation.ThreadErrors))
	}
	if ar1.Degradation.CorruptPTPackets != ar2.Degradation.CorruptPTPackets {
		t.Fatalf("corrupt-packet accounting differs: %d vs %d",
			ar1.Degradation.CorruptPTPackets, ar2.Degradation.CorruptPTPackets)
	}
	if !reflect.DeepEqual(ar1.Reports, ar2.Reports) {
		t.Fatal("reports over the damaged trace differ across re-analysis")
	}
}
