package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prorace/internal/tracefmt"
)

// ThreadError is one thread's analysis failure, isolated from the rest of
// the run. In lenient mode the thread is dropped (its sync records still
// contribute happens-before edges) and the error is recorded here; in
// strict mode the first ThreadError aborts the analysis.
type ThreadError struct {
	TID int32
	// Stage is the pipeline stage that failed: "synthesis" or
	// "reconstruct".
	Stage string
	Err   error
	// Retries is how many times the stage was retried before giving up
	// (transient errors only).
	Retries int
}

func (e *ThreadError) Error() string {
	return fmt.Sprintf("core: tid %d: %s failed: %v", e.TID, e.Stage, e.Err)
}

func (e *ThreadError) Unwrap() error { return e.Err }

// TransientError marks a failure worth retrying (an overloaded sink, a
// temporarily unavailable resource). The worker pool retries a stage whose
// error IsTransient up to AnalysisOptions.ThreadRetries times before
// recording a ThreadError.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// runWithRetry executes one per-thread stage, converting panics to errors
// and retrying transient failures up to `retries` extra attempts. It
// returns nil on success, or the ThreadError that made the stage fail.
func runWithRetry(tid int32, stage string, retries int, f func() error) *ThreadError {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			return f()
		}()
		if err == nil {
			return nil
		}
		lastErr = err
		if !IsTransient(err) || attempt >= retries {
			return &ThreadError{TID: tid, Stage: stage, Err: lastErr, Retries: attempt}
		}
	}
}

// Degradation summarises everything a lenient analysis had to give up —
// the "how much should I trust these reports" section of the result.
type Degradation struct {
	// Injected is the fault spec applied before analysis ("" when none).
	Injected string
	// ThreadErrors are the isolated per-thread failures.
	ThreadErrors []ThreadError
	// DroppedThreads lists threads whose decoded path and reconstructed
	// accesses were discarded (their sync records still feed the
	// detector), ascending.
	DroppedThreads []int32
	// CorruptPTPackets counts malformed PT packets and sync-point
	// mismatches across all threads.
	CorruptPTPackets int
	// DecodeGaps counts the stream regions skipped to resynchronise.
	DecodeGaps int
	// PTBytesSkipped is the stream volume lost inside those gaps.
	PTBytesSkipped uint64
	// PTBytesTotal is the total PT volume, for coverage accounting.
	PTBytesTotal uint64
	// UnpinnedSamples counts PEBS records that could not be placed on a
	// decoded path (marker loss, gap-shortened paths).
	UnpinnedSamples int
	// SyncAnomalies counts synchronization-log invariant violations —
	// evidence of dropped records and therefore of conservatively widened
	// happens-before (possible extra reports, never hidden ones).
	SyncAnomalies int
	// GapAdjacentRaces counts reports whose accesses involve a degraded
	// thread; those reports carry race.Report.GapAdjacent.
	GapAdjacentRaces int
	// InvalidTIDDrops counts per-thread streams and sync records that a
	// corrupt container attributed to impossible thread IDs and that the
	// analysis discarded (see sanitizeTrace).
	InvalidTIDDrops int
	// RejectedSegments counts trace segments an Analyzer session refused
	// (foreign run header, nil segment). The session itself stays healthy;
	// the refusals are surfaced here so every subsequent result says the
	// window may be missing data.
	RejectedSegments int
	// SegmentRejections holds the rejection reasons, in arrival order.
	SegmentRejections []string
}

// Degraded reports whether the analysis lost anything.
func (d *Degradation) Degraded() bool {
	return d.Injected != "" || len(d.ThreadErrors) > 0 || len(d.DroppedThreads) > 0 ||
		d.CorruptPTPackets > 0 || d.DecodeGaps > 0 || d.PTBytesSkipped > 0 ||
		d.SyncAnomalies > 0 || d.InvalidTIDDrops > 0 || d.RejectedSegments > 0
}

// CoverageLossPct estimates the fraction of the control-flow trace lost,
// as a percentage of the PT stream volume.
func (d *Degradation) CoverageLossPct() float64 {
	if d.PTBytesTotal == 0 {
		return 0
	}
	return 100 * float64(d.PTBytesSkipped) / float64(d.PTBytesTotal)
}

// Summary renders a human-readable multi-line account; empty string when
// nothing degraded.
func (d *Degradation) Summary() string {
	if !d.Degraded() {
		return ""
	}
	var b strings.Builder
	if d.Injected != "" {
		fmt.Fprintf(&b, "injected faults: %s\n", d.Injected)
	}
	if d.CorruptPTPackets > 0 || d.DecodeGaps > 0 {
		fmt.Fprintf(&b, "PT decode: %d corrupt packets, %d gaps, %d bytes skipped (%.1f%% coverage loss)\n",
			d.CorruptPTPackets, d.DecodeGaps, d.PTBytesSkipped, d.CoverageLossPct())
	}
	if d.UnpinnedSamples > 0 {
		fmt.Fprintf(&b, "samples: %d unpinned\n", d.UnpinnedSamples)
	}
	if d.SyncAnomalies > 0 {
		fmt.Fprintf(&b, "sync log: %d anomalies (happens-before conservatively widened)\n", d.SyncAnomalies)
	}
	for i := range d.ThreadErrors {
		fmt.Fprintf(&b, "thread error: %v\n", &d.ThreadErrors[i])
	}
	if len(d.DroppedThreads) > 0 {
		fmt.Fprintf(&b, "dropped threads: %v\n", d.DroppedThreads)
	}
	if d.GapAdjacentRaces > 0 {
		fmt.Fprintf(&b, "gap-adjacent races: %d (flagged in reports)\n", d.GapAdjacentRaces)
	}
	if d.InvalidTIDDrops > 0 {
		fmt.Fprintf(&b, "invalid thread ids: %d streams/records dropped\n", d.InvalidTIDDrops)
	}
	if d.RejectedSegments > 0 {
		fmt.Fprintf(&b, "rejected segments: %d (%s)\n", d.RejectedSegments, strings.Join(d.SegmentRejections, "; "))
	}
	return strings.TrimRight(b.String(), "\n")
}

// maxAnalysisTID bounds the thread IDs the analysis accepts from a trace.
// The detector's vector clocks are dense arrays indexed by TID, so a
// corrupt container claiming a multi-billion (or negative) thread ID would
// allocate gigabytes — or crash — before any per-packet robustness could
// help. Real traces never come close: the machine hands out small
// sequential TIDs, far below this.
const maxAnalysisTID = 1 << 9

// maxAnalysisAllocBytes bounds the size a SyncMalloc record may claim: the
// detector walks the allocation granule-by-granule to bump address
// generations, so a corrupt record claiming an exabyte would spin that
// walk forever. The simulated machine's heap is orders of magnitude
// smaller.
const maxAnalysisAllocBytes = 1 << 24

// sanitizeTrace screens out trace content attributed to impossible thread
// IDs — decoding residue of a corrupt container. Strict mode refuses the
// trace; lenient mode drops the offending streams and records, counting
// them in deg.InvalidTIDDrops. The returned trace shares all clean content
// with the input.
func sanitizeTrace(tr *tracefmt.Trace, strict bool, deg *Degradation) (*tracefmt.Trace, error) {
	badTID := func(tid int32) bool { return tid < 0 || tid > maxAnalysisTID }
	// ThreadCreate and ThreadJoin carry a peer TID in Addr that the
	// detector indexes clocks by; everything else's Addr is a memory
	// address.
	badRec := func(r *tracefmt.SyncRecord) bool {
		if badTID(r.TID) {
			return true
		}
		if (r.Kind == tracefmt.SyncThreadCreate || r.Kind == tracefmt.SyncThreadJoin) &&
			r.Addr > maxAnalysisTID {
			return true
		}
		return r.Kind == tracefmt.SyncMalloc && r.Aux > maxAnalysisAllocBytes
	}

	drops := 0
	for tid := range tr.PEBS {
		if badTID(tid) {
			drops++
		}
	}
	for tid := range tr.PT {
		if badTID(tid) {
			drops++
		}
	}
	for i := range tr.Sync {
		if badRec(&tr.Sync[i]) {
			drops++
		}
	}
	if drops == 0 {
		return tr, nil
	}
	if strict {
		return nil, fmt.Errorf("core: trace attributes data to %d impossible thread ids (corrupt container)", drops)
	}

	out := *tr
	out.PEBS = make(map[int32][]tracefmt.PEBSRecord, len(tr.PEBS))
	for tid, recs := range tr.PEBS {
		if !badTID(tid) {
			out.PEBS[tid] = recs
		}
	}
	out.PT = make(map[int32][]byte, len(tr.PT))
	for tid, stream := range tr.PT {
		if !badTID(tid) {
			out.PT[tid] = stream
		}
	}
	out.Sync = make([]tracefmt.SyncRecord, 0, len(tr.Sync))
	for i := range tr.Sync {
		if !badRec(&tr.Sync[i]) {
			out.Sync = append(out.Sync, tr.Sync[i])
		}
	}
	deg.InvalidTIDDrops = drops
	return &out, nil
}

// recordThreadError appends a thread failure and marks the thread dropped.
func (d *Degradation) recordThreadError(te *ThreadError) {
	d.ThreadErrors = append(d.ThreadErrors, *te)
	for _, tid := range d.DroppedThreads {
		if tid == te.TID {
			return
		}
	}
	d.DroppedThreads = append(d.DroppedThreads, te.TID)
	sort.Slice(d.DroppedThreads, func(i, j int) bool { return d.DroppedThreads[i] < d.DroppedThreads[j] })
}
