package core

import (
	"sort"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/workload"
)

func TestParallelAnalysisMatchesSequential(t *testing.T) {
	bug, err := bugs.ByID("mysql-3596") // 20 threads: real fan-out
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 4, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := AnalysisOptions{Mode: replay.ModeForwardBackward}
	seq, err := Analyze(built.Workload.Program, tr.Trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	popts := opts
	popts.Workers = 8
	par, err := Analyze(built.Workload.Program, tr.Trace, popts)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruction must be identical: same per-thread access streams.
	if seq.ReplayStats != par.ReplayStats {
		t.Fatalf("replay stats differ:\n seq %+v\n par %+v", seq.ReplayStats, par.ReplayStats)
	}
	if len(seq.Accesses) != len(par.Accesses) {
		t.Fatalf("thread counts differ: %d vs %d", len(seq.Accesses), len(par.Accesses))
	}
	for tid, sa := range seq.Accesses {
		pa := par.Accesses[tid]
		if len(sa) != len(pa) {
			t.Fatalf("tid %d: %d vs %d accesses", tid, len(sa), len(pa))
		}
		for i := range sa {
			if sa[i] != pa[i] {
				t.Fatalf("tid %d access %d differs: %+v vs %+v", tid, i, sa[i], pa[i])
			}
		}
	}

	// Reports identical up to order.
	sk := make([][2]uint64, 0, len(seq.Reports))
	for _, r := range seq.Reports {
		sk = append(sk, r.Key())
	}
	pk := make([][2]uint64, 0, len(par.Reports))
	for _, r := range par.Reports {
		pk = append(pk, r.Key())
	}
	sortKeys := func(ks [][2]uint64) {
		sort.Slice(ks, func(i, j int) bool {
			if ks[i][0] != ks[j][0] {
				return ks[i][0] < ks[j][0]
			}
			return ks[i][1] < ks[j][1]
		})
	}
	sortKeys(sk)
	sortKeys(pk)
	if len(sk) != len(pk) {
		t.Fatalf("report counts differ: %d vs %d", len(sk), len(pk))
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("report %d differs", i)
		}
	}
	if seq.Regenerated != par.Regenerated {
		t.Error("regeneration behaviour differs")
	}
}

func TestAnalyzeWorkersAndShardsMatchSequential(t *testing.T) {
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 9, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Analyze(built.Workload.Program, tr.Trace, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []AnalysisOptions{
		{Mode: replay.ModeForwardBackward, Workers: 4},
		{Mode: replay.ModeForwardBackward, DetectShards: 4},
		{Mode: replay.ModeForwardBackward, Workers: 4, DetectShards: 4},
		{Mode: replay.ModeForwardBackward, Workers: -1, DetectShards: -1},
	} {
		got, err := Analyze(built.Workload.Program, tr.Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.ReplayStats != seq.ReplayStats {
			t.Fatalf("workers=%d shards=%d: replay stats differ:\n got %+v\nwant %+v",
				cfg.Workers, cfg.DetectShards, got.ReplayStats, seq.ReplayStats)
		}
		if len(got.Reports) != len(seq.Reports) {
			t.Fatalf("workers=%d shards=%d: %d reports, want %d",
				cfg.Workers, cfg.DetectShards, len(got.Reports), len(seq.Reports))
		}
		for i := range got.Reports {
			if got.Reports[i].Key() != seq.Reports[i].Key() {
				t.Fatalf("workers=%d shards=%d: report %d differs",
					cfg.Workers, cfg.DetectShards, i)
			}
		}
		if got.Regenerated != seq.Regenerated {
			t.Errorf("workers=%d shards=%d: regeneration behaviour differs", cfg.Workers, cfg.DetectShards)
		}
	}
}

func TestWorkerAndShardCountResolution(t *testing.T) {
	if workerCount(0) != 1 || shardCount(0) != 1 || shardCount(1) != 1 {
		t.Error("0 must mean sequential")
	}
	if workerCount(-1) < 1 || shardCount(-3) < 1 {
		t.Error("negative must resolve to GOMAXPROCS")
	}
	if workerCount(6) != 6 || shardCount(6) != 6 {
		t.Error("positive counts must pass through")
	}
}

func TestParallelAnalysisDefaultWorkers(t *testing.T) {
	w := workload.Apache(1)
	tr, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Analyze(w.Program, tr.Trace, AnalysisOptions{Mode: replay.ModeForwardBackward, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ar.ReplayStats.Total() == 0 {
		t.Error("parallel analysis with default workers produced nothing")
	}
}
