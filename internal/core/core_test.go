package core

import (
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/workload"
)

func TestTraceProgramMeasuresOverhead(t *testing.T) {
	w := workload.PARSEC(1)[0]
	res, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true,
		MeasureOverhead: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseStats.Cycles == 0 || res.TracedStats.Cycles <= res.BaseStats.Cycles {
		t.Errorf("cycles: base %d traced %d", res.BaseStats.Cycles, res.TracedStats.Cycles)
	}
	if res.Overhead <= 0 {
		t.Errorf("overhead = %v", res.Overhead)
	}
	if res.Trace.SampleCount() == 0 || len(res.Trace.PT) == 0 || len(res.Trace.Sync) == 0 {
		t.Error("trace incomplete")
	}
}

func TestTraceProgramWithoutOverhead(t *testing.T) {
	w := workload.Apache(1)
	res, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseStats.Cycles != 0 || res.Overhead != 0 {
		t.Error("baseline must be skipped when MeasureOverhead is false")
	}
}

func TestDefaultPeriodApplied(t *testing.T) {
	w := workload.Apache(1)
	res, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.ProRace, Seed: 3, EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Period != 10000 {
		t.Errorf("default period = %d", res.Trace.Period)
	}
}

func TestAnalyzeTimingsPopulated(t *testing.T) {
	w := workload.Apache(1)
	tr, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Analyze(w.Program, tr.Trace, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	if ar.DecodeTime <= 0 || ar.ReconstructTime <= 0 || ar.DetectTime <= 0 {
		t.Errorf("timings: %v %v %v", ar.DecodeTime, ar.ReconstructTime, ar.DetectTime)
	}
	if ar.TotalTime() != ar.DecodeTime+ar.ReconstructTime+ar.DetectTime {
		t.Error("TotalTime mismatch")
	}
	if ar.ReplayStats.Total() == 0 || len(ar.Accesses) == 0 {
		t.Error("no reconstruction output")
	}
	// Race-free workload: no reports, no regeneration.
	if len(ar.Reports) != 0 {
		t.Errorf("race-free workload reported %d races", len(ar.Reports))
	}
	if ar.Regenerated {
		t.Error("regeneration must not trigger without races")
	}
}

func TestRaceFeedbackRegeneration(t *testing.T) {
	// A racy workload whose reconstruction uses memory emulation: after
	// detection the §5.1 feedback loop must regenerate with the racy
	// locations invalidated — and still detect the race.
	bug, err := bugs.ByID("pfscan")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	found := false
	for seed := int64(1); seed <= 4; seed++ {
		res, err := Run(built.Workload.Program,
			TraceOptions{Kind: driver.ProRace, Period: 1000, Seed: seed,
				EnablePT: true, Machine: built.Workload.Machine},
			AnalysisOptions{Mode: replay.ModeForwardBackward})
		if err != nil {
			t.Fatal(err)
		}
		if built.Detected(res.AnalysisResult.Reports) {
			found = true
		}
	}
	if !found {
		t.Error("pcrel bug not detected with feedback enabled")
	}
}

func TestRaceFeedbackCanBeDisabled(t *testing.T) {
	bug, err := bugs.ByID("pfscan")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 2, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Analyze(built.Workload.Program, tr.Trace, AnalysisOptions{
		Mode: replay.ModeForwardBackward, DisableRaceFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Regenerated {
		t.Error("regeneration ran despite being disabled")
	}
}

func TestRunPipelineEndToEnd(t *testing.T) {
	w := workload.Pbzip2(1)
	res, err := Run(w.Program,
		TraceOptions{Kind: driver.ProRace, Period: 500, Seed: 9, EnablePT: true,
			MeasureOverhead: true, Machine: w.Machine},
		AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceResult == nil || res.AnalysisResult == nil {
		t.Fatal("incomplete result")
	}
	if res.AnalysisResult.ReplayStats.RecoveryRatio() <= 1 {
		t.Errorf("recovery ratio = %v", res.AnalysisResult.ReplayStats.RecoveryRatio())
	}
}

func TestBasicBlockModeSkipsFeedback(t *testing.T) {
	w := workload.Apache(1)
	tr, err := TraceProgram(w.Program, TraceOptions{
		Kind: driver.Vanilla, Period: 100, Seed: 3, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Analyze(w.Program, tr.Trace, AnalysisOptions{Mode: replay.ModeBasicBlock})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Regenerated {
		t.Error("BB mode must never regenerate")
	}
	if ar.ReplayStats.BasicBlock == 0 && ar.ReplayStats.Sampled == 0 {
		t.Error("BB mode reconstructed nothing")
	}
}
