package core

import (
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
	"prorace/internal/witness"
)

// WitnessOptions asks the analysis to attach a deterministic reproduction
// (internal/witness) to every race report. The analysis re-executes the
// program — so the caller must say which replayable program the trace came
// from (Spec) and how the machine was configured (the trace header itself
// carries only program name, seed and period).
type WitnessOptions struct {
	// Spec identifies the replayable program source ("bug", "workload" or
	// "oracle" kind; see witness.ProgSpec). Required: witnesses name
	// their program, they do not embed it.
	Spec witness.ProgSpec
	// Machine is the simulator configuration of the traced run. Its Seed
	// is overwritten from the trace header.
	Machine machine.Config
	// DriverKind and EnablePT mirror the TraceOptions of the recorded
	// run, for the traced-replay fallback rung.
	DriverKind driver.Kind
	EnablePT   bool
	// Budget caps replays per report (0 = witness.DefaultBudget).
	Budget int
}

// attachWitnesses generates a witness per report, storing outcomes in
// res.Witnesses and the serialized recipe in each Report.Witness.
func attachWitnesses(p *prog.Program, tr *tracefmt.Trace, res *AnalysisResult, wo *WitnessOptions) {
	mcfg := wo.Machine
	mcfg.Seed = tr.Seed
	period := tr.Period
	if period == 0 {
		period = 10000 // TraceProgram's default
	}
	tspec := &witness.TracerSpec{
		Kind:     witness.DriverKindName(wo.DriverKind),
		Period:   period,
		Seed:     tr.Seed,
		EnablePT: wo.EnablePT,
	}
	res.Witnesses = make([]*witness.Outcome, len(res.Reports))
	for i := range res.Reports {
		out := witness.Generate(p, wo.Spec, mcfg, tspec, res.Reports[i], witness.GenConfig{Budget: wo.Budget})
		res.Witnesses[i] = out
		if out.Witness != nil {
			res.Reports[i].Witness = string(out.Witness.Encode())
		}
	}
}
