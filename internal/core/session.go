package core

import (
	"errors"
	"fmt"
	"sync"

	"prorace/internal/prog"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// Analyzer is the resumable form of Analyze: a stateful analysis session
// that consumes a run's trace in segments instead of as one finished
// artifact. Feed accepts segments as they arrive (a production process
// streaming its perf buffers out in bounded chunks), Snapshot yields the
// analysis of everything fed so far, and Finish seals the session.
//
// The contract the daemon (internal/monitor) and every other incremental
// caller relies on: feeding a trace in 1, 2 or N segments — cut anywhere,
// including mid PT packet — and calling Finish yields a result
// byte-identical to Analyze over the whole trace, at every Workers /
// DetectShards / path-cache configuration. The session owns what makes
// that cheap to re-derive and safe to carry:
//
//   - the merged trace accumulated so far (segments are re-concatenated
//     before decode, because PT decoding, sample pinning, and the §5.1
//     feedback loop are all whole-stream computations — see DESIGN.md §13
//     for why mid-stream detector carry-over cannot be byte-faithful);
//   - the resolved telemetry registry and metrics listener, resolved once
//     at session creation and reused by every analysis round;
//   - the decoded-path cache named in the options (or the process-wide
//     default), so repeated rounds over overlapping content share decodes;
//   - the detector output of the last round (reports, racy addresses,
//     shard state summary), returned without recomputation when no new
//     segment arrived since;
//   - session-level degradation: a rejected segment (foreign run header)
//     is recorded and surfaced in every subsequent result's Degradation
//     instead of poisoning the session.
//
// An Analyzer is safe for concurrent use; Feed/Snapshot/Finish serialise
// on an internal lock (the analysis itself parallelises internally via
// Workers/DetectShards).
type Analyzer struct {
	p    *prog.Program
	opts AnalysisOptions
	tel  *telemetry.Registry

	mu       sync.Mutex
	merged   *tracefmt.Trace // nil until first accepted segment
	adopted  bool            // merged aliases the caller's first segment
	segments int
	rejected []string // reasons, in arrival order
	last     *AnalysisResult
	dirty    bool // a segment arrived since the last analysis round
	finished bool
}

// ErrFinished is returned by Feed and Snapshot once Finish has sealed the
// session.
var ErrFinished = errors.New("core: analyzer session is finished")

// ErrSegmentRejected wraps a Feed failure that degraded the session
// without poisoning it: the offending segment was discarded, the session
// remains usable, and the rejection is accounted in every subsequent
// result's Degradation.RejectedSegments.
var ErrSegmentRejected = errors.New("core: segment rejected")

// NewAnalyzer opens an analysis session for one traced program. The
// telemetry registry (and, when opts.MetricsAddr is set, the live metrics
// listener) is resolved once here and carried across every round.
func NewAnalyzer(p *prog.Program, opts AnalysisOptions) (*Analyzer, error) {
	tel, err := resolveTelemetry(opts.Telemetry, opts.MetricsAddr)
	if err != nil {
		return nil, err
	}
	// The session is the segmentation layer: rounds run the plain
	// whole-trace analysis. A SegmentSize left set would make each round
	// re-open a nested session (see Analyze) ad infinitum.
	opts.Telemetry = tel
	opts.MetricsAddr = ""
	opts.SegmentSize = 0
	return &Analyzer{p: p, opts: opts, tel: tel}, nil
}

// Feed appends one trace segment to the session. Segments must belong to
// the same run (matching Program/Period/Seed header); a mismatched or nil
// segment is rejected with an error wrapping ErrSegmentRejected — the
// session itself stays healthy and the rejection is accounted as
// degradation. Feed after Finish returns ErrFinished.
func (a *Analyzer) Feed(seg *tracefmt.Trace) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return ErrFinished
	}
	if seg == nil {
		return a.reject("nil segment")
	}
	switch {
	case a.merged == nil:
		// Single-segment sessions (the Analyze wrapper) stay zero-copy:
		// adopt the caller's trace and only deep-copy if a second segment
		// ever arrives. Analysis never mutates trace content.
		a.merged = seg
		a.adopted = true
	default:
		if a.adopted {
			a.merged = a.merged.CloneForMerge()
			a.adopted = false
		}
		if err := tracefmt.MergeSegment(a.merged, seg); err != nil {
			return a.reject(err.Error())
		}
	}
	a.segments++
	a.dirty = true
	if a.tel != nil {
		a.tel.Counter("prorace_session_segments_total", "Trace segments accepted by Analyzer sessions.").Inc()
		a.tel.Counter("prorace_session_segment_bytes_total", "Trace payload bytes accepted by Analyzer sessions.").Add(seg.TotalBytes())
	}
	return nil
}

// reject records a session-level degradation and returns the error. The
// caller holds a.mu.
func (a *Analyzer) reject(reason string) error {
	a.rejected = append(a.rejected, reason)
	// The carried result no longer reflects the session's degradation
	// tally; recompute on next Snapshot (cheap: decode comes from cache).
	a.dirty = true
	if a.tel != nil {
		a.tel.Counter("prorace_session_segments_rejected_total", "Trace segments refused by Analyzer sessions (foreign run header, nil segment).").Inc()
	}
	return fmt.Errorf("%w: %s", ErrSegmentRejected, reason)
}

// Segments reports how many segments the session has accepted.
func (a *Analyzer) Segments() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.segments
}

// MergedBytes reports the serialised size of the trace accumulated so far.
func (a *Analyzer) MergedBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.merged == nil {
		return 0
	}
	return a.merged.TotalBytes()
}

// Snapshot runs the offline analysis over everything fed so far and
// returns the result. The session stays open — more segments may follow.
// When nothing changed since the last round, the carried result is
// returned as-is (no recomputation and no new telemetry publication), so a
// daemon can serve report reads at any frequency. Callers must treat the
// returned result as immutable: later rounds return fresh results, but an
// unchanged session shares one.
func (a *Analyzer) Snapshot() (*AnalysisResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return nil, ErrFinished
	}
	return a.analyzeLocked()
}

// Finish runs a final analysis round and seals the session: subsequent
// Feed/Snapshot calls return ErrFinished, and Finish itself keeps
// returning the final result.
func (a *Analyzer) Finish() (*AnalysisResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return a.last, nil
	}
	res, err := a.analyzeLocked()
	if err != nil {
		return nil, err
	}
	a.finished = true
	return res, nil
}

// analyzeLocked runs (or reuses) the analysis of the merged trace. The
// caller holds a.mu.
func (a *Analyzer) analyzeLocked() (*AnalysisResult, error) {
	if !a.dirty && a.last != nil {
		return a.last, nil
	}
	tr := a.merged
	if tr == nil {
		// An empty session analyses an empty trace: no reports, but a
		// well-formed result carrying the session degradation.
		tr = tracefmt.NewTrace("", 0, 0)
	}
	res, err := Analyze(a.p, tr, a.opts)
	if err != nil {
		return nil, err
	}
	res.Segments = a.segments
	res.Degradation.RejectedSegments = len(a.rejected)
	res.Degradation.SegmentRejections = append([]string(nil), a.rejected...)
	a.last = res
	a.dirty = false
	return res, nil
}
