package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"prorace/internal/faultinject"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/replay"
	"prorace/internal/report"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// oracleTrace returns a densely sampled trace of a small oracle-generated
// concurrent program — racy (several reports), §5.1-regenerating, and small
// enough that the full equivalence matrix stays cheap.
func oracleTrace(t *testing.T) (*prog.Program, *TraceResult) {
	t.Helper()
	p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(7)))
	tr, err := TraceProgram(p, TraceOptions{Kind: driver.ProRace, Period: 2, Seed: 7, EnablePT: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// sessionMatrix is the segment-equivalence sweep: every segment count ×
// worker count × shard count, clean and fault-injected. The contract under
// test is the Analyzer's headline guarantee — feeding a trace in N segments
// and calling Finish is byte-identical to one-shot Analyze, including the
// telemetry counter totals the run publishes.
func sessionMatrix(short bool) (segs, workers, shards []int) {
	if short {
		return []int{1, 2, 8}, []int{0, 4}, []int{0, 4}
	}
	return []int{1, 2, 8, 17}, []int{0, 1, 4}, []int{0, 1, 4}
}

// pipelineCounters strips the session-layer series (segment acceptance
// accounting, absent by construction from a one-shot run) and the pooled
// pathState recycle tally (sync.Pool warmth — allocation behaviour, not
// pipeline output) so the remaining counters — decode, synthesis, replay,
// detection, feedback — can be compared exactly between a one-shot and a
// segmented analysis.
func pipelineCounters(s *telemetry.Snapshot) map[string]uint64 {
	out := make(map[string]uint64, len(s.Counters))
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "prorace_session_") ||
			name == "prorace_replay_pool_recycles_total" {
			continue
		}
		out[name] = v
	}
	return out
}

func TestSegmentEquivalenceMatrix(t *testing.T) {
	p, tr := oracleTrace(t)
	variants := []struct {
		name  string
		fault *faultinject.Spec
	}{
		{name: "clean"},
		{name: "faulted", fault: &faultinject.Spec{Seed: 7, Faults: []faultinject.Fault{
			{Kind: faultinject.PTFlip, Rate: 0.02},
			{Kind: faultinject.SyncGap, Rate: 0.01},
		}}},
	}
	segCounts, workerCounts, shardCounts := sessionMatrix(testing.Short())

	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			for _, workers := range workerCounts {
				for _, shards := range shardCounts {
					// One-shot reference at this exact parallelism config,
					// with its own registry and path cache so counter totals
					// are attributable to this run alone.
					ref := AnalysisOptions{
						Mode:    replay.ModeForwardBackward,
						Workers: workers, DetectShards: shards,
						FaultSpec: variant.fault,
						PathCache: synthesis.NewCache(2),
						Telemetry: telemetry.New(),
					}
					want, err := Analyze(p, tr.Trace, ref)
					if err != nil {
						t.Fatalf("workers=%d shards=%d reference: %v", workers, shards, err)
					}
					if variant.fault == nil && len(want.Reports) == 0 {
						t.Fatal("clean reference found no races; the equivalence test needs reports to compare")
					}
					wantText := report.FormatRaces(p, want.Reports)
					wantCounters := pipelineCounters(want.Telemetry)

					for _, n := range segCounts {
						label := variant.name + " segments=" + itoa(n) +
							" workers=" + itoa(workers) + " shards=" + itoa(shards)
						opts := ref
						opts.PathCache = synthesis.NewCache(2)
						opts.Telemetry = telemetry.New()
						a, err := NewAnalyzer(p, opts)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						for i, seg := range tr.Trace.Split(n) {
							if err := a.Feed(seg); err != nil {
								t.Fatalf("%s: feed segment %d: %v", label, i, err)
							}
						}
						got, err := a.Finish()
						if err != nil {
							t.Fatalf("%s: finish: %v", label, err)
						}
						mustMatch(t, label, want, got)
						if gotText := report.FormatRaces(p, got.Reports); gotText != wantText {
							t.Fatalf("%s: rendered reports differ:\nwant:\n%s\ngot:\n%s", label, wantText, gotText)
						}
						if got.Segments != n {
							t.Fatalf("%s: result records %d segments", label, got.Segments)
						}
						if gotCounters := pipelineCounters(got.Telemetry); !reflect.DeepEqual(wantCounters, gotCounters) {
							t.Fatalf("%s: pipeline counter totals differ:\nwant %v\n got %v", label, wantCounters, gotCounters)
						}
						if want.Degradation.Summary() != got.Degradation.Summary() {
							t.Fatalf("%s: degradation summaries differ:\nwant %q\n got %q",
								label, want.Degradation.Summary(), got.Degradation.Summary())
						}
					}
				}
			}
		})
	}
}

// TestAnalyzeSegmentSizeMatchesOneShot covers the AnalysisOptions.SegmentSize
// knob: the whole-trace entry point routed through the session layer.
func TestAnalyzeSegmentSizeMatchesOneShot(t *testing.T) {
	built, tr := racyTrace(t)
	base := AnalysisOptions{Mode: replay.ModeForwardBackward, DisablePathCache: true}
	want, err := Analyze(built.Workload.Program, tr.Trace, base)
	if err != nil {
		t.Fatal(err)
	}
	seg := base
	seg.SegmentSize = int(tr.Trace.TotalBytes()/8) + 1
	got, err := Analyze(built.Workload.Program, tr.Trace, seg)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "SegmentSize=len/8", want, got)
	if got.Segments < 2 {
		t.Fatalf("SegmentSize analysis used %d segments, want several", got.Segments)
	}
	if want.Segments != 0 {
		t.Fatalf("one-shot analysis claims %d segments", want.Segments)
	}
}

// TestAnalyzerSnapshotAccumulates drives a session Snapshot-by-Snapshot:
// every prefix of the segment stream analyses like a one-shot run over that
// prefix, and an unchanged session serves the memoized result.
func TestAnalyzerSnapshotAccumulates(t *testing.T) {
	p, tr := oracleTrace(t)
	segs := tr.Trace.Split(4)
	opts := AnalysisOptions{Mode: replay.ModeForwardBackward, PathCache: synthesis.NewCache(4)}
	a, err := NewAnalyzer(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	prefix := &tracefmt.Trace{}
	for i, seg := range segs {
		if err := a.Feed(seg); err != nil {
			t.Fatalf("feed %d: %v", i, err)
		}
		if err := tracefmt.MergeSegment(prefix, seg.CloneForMerge()); err != nil {
			t.Fatal(err)
		}
		got, err := a.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		want, err := Analyze(p, prefix, AnalysisOptions{
			Mode: replay.ModeForwardBackward, PathCache: synthesis.NewCache(4),
		})
		if err != nil {
			t.Fatalf("prefix analyze %d: %v", i, err)
		}
		mustMatch(t, "prefix "+itoa(i+1), want, got)
		if got.Segments != i+1 {
			t.Fatalf("prefix %d: result records %d segments", i+1, got.Segments)
		}
		again, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if again != got {
			t.Fatalf("prefix %d: unchanged session recomputed its result", i+1)
		}
	}
	fin, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if a.Segments() != len(segs) || fin.Segments != len(segs) {
		t.Fatalf("session accepted %d segments, result says %d, want %d",
			a.Segments(), fin.Segments, len(segs))
	}
}

// TestAnalyzerRejectsForeignSegment: a segment from a different run must be
// refused without poisoning the session — later feeds still work, and the
// rejection is surfaced as degradation in every subsequent result.
func TestAnalyzerRejectsForeignSegment(t *testing.T) {
	p, tr := oracleTrace(t)
	segs := tr.Trace.Split(2)
	a, err := NewAnalyzer(p, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Feed(segs[0]); err != nil {
		t.Fatal(err)
	}
	foreign := tracefmt.NewTrace("someone-else", 999, 3)
	if err := a.Feed(foreign); !errors.Is(err, ErrSegmentRejected) {
		t.Fatalf("foreign segment: got %v, want ErrSegmentRejected", err)
	}
	if err := a.Feed(nil); !errors.Is(err, ErrSegmentRejected) {
		t.Fatalf("nil segment: got %v, want ErrSegmentRejected", err)
	}
	if err := a.Feed(segs[1]); err != nil {
		t.Fatalf("session poisoned by a rejected segment: %v", err)
	}
	res, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 {
		t.Fatalf("accepted %d segments, want 2", res.Segments)
	}
	if res.Degradation.RejectedSegments != 2 || len(res.Degradation.SegmentRejections) != 2 {
		t.Fatalf("rejections not accounted: %+v", res.Degradation)
	}
	if !res.Degradation.Degraded() {
		t.Fatal("rejected segments must mark the result degraded")
	}
	if !strings.Contains(res.Degradation.Summary(), "rejected segments: 2") {
		t.Fatalf("summary omits rejections: %q", res.Degradation.Summary())
	}

	// The analysis content itself must match the clean full-trace run.
	want, err := Analyze(p, tr.Trace, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Reports, res.Reports) {
		t.Fatal("reports differ after surviving a rejected segment")
	}
}

// TestAnalyzerFinishSeals: Feed and Snapshot after Finish fail with
// ErrFinished; Finish itself stays idempotent.
func TestAnalyzerFinishSeals(t *testing.T) {
	p, tr := oracleTrace(t)
	a, err := NewAnalyzer(p, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Feed(tr.Trace); err != nil {
		t.Fatal(err)
	}
	fin, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Feed(tr.Trace.Split(2)[0]); !errors.Is(err, ErrFinished) {
		t.Fatalf("Feed after Finish: got %v, want ErrFinished", err)
	}
	if _, err := a.Snapshot(); !errors.Is(err, ErrFinished) {
		t.Fatalf("Snapshot after Finish: got %v, want ErrFinished", err)
	}
	again, err := a.Finish()
	if err != nil || again != fin {
		t.Fatalf("Finish not idempotent: %v, %p vs %p", err, again, fin)
	}
}

// TestAnalyzerEmptySession: Finish with nothing fed yields a well-formed
// empty result, not an error — a daemon window may time out before any
// segment arrives.
func TestAnalyzerEmptySession(t *testing.T) {
	p, _ := oracleTrace(t)
	a, err := NewAnalyzer(p, AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 || res.Segments != 0 {
		t.Fatalf("empty session produced %d reports over %d segments", len(res.Reports), res.Segments)
	}
}

// TestAnalyzerSessionTelemetry: the session layer publishes its own
// acceptance/rejection series on the carried registry.
func TestAnalyzerSessionTelemetry(t *testing.T) {
	p, tr := oracleTrace(t)
	reg := telemetry.New()
	a, err := NewAnalyzer(p, AnalysisOptions{
		Mode: replay.ModeForwardBackward, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range tr.Trace.Split(3) {
		if err := a.Feed(seg); err != nil {
			t.Fatal(err)
		}
	}
	a.Feed(nil) // one rejection
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["prorace_session_segments_total"]; got != 3 {
		t.Errorf("segments_total = %d, want 3", got)
	}
	if got := snap.Counters["prorace_session_segments_rejected_total"]; got != 1 {
		t.Errorf("segments_rejected_total = %d, want 1", got)
	}
	if got := snap.Counters["prorace_session_segment_bytes_total"]; got != tr.Trace.TotalBytes() {
		t.Errorf("segment_bytes_total = %d, want %d", got, tr.Trace.TotalBytes())
	}
}
