package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/faultinject"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
)

func TestRunWithRetrySuccess(t *testing.T) {
	calls := 0
	if te := runWithRetry(1, "synthesis", 2, func() error { calls++; return nil }); te != nil {
		t.Fatalf("unexpected error: %v", te)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestRunWithRetryPanicBecomesError(t *testing.T) {
	te := runWithRetry(3, "reconstruct", 2, func() error { panic("boom") })
	if te == nil {
		t.Fatal("panic swallowed")
	}
	if te.TID != 3 || te.Stage != "reconstruct" {
		t.Fatalf("wrong attribution: %+v", te)
	}
	if !strings.Contains(te.Error(), "boom") {
		t.Fatalf("panic value lost: %v", te)
	}
	// Panics are not transient: no retries.
	if te.Retries != 0 {
		t.Fatalf("panic was retried %d times", te.Retries)
	}
}

func TestRunWithRetryTransient(t *testing.T) {
	calls := 0
	te := runWithRetry(1, "synthesis", 2, func() error {
		calls++
		if calls < 3 {
			return &TransientError{Err: errors.New("busy")}
		}
		return nil
	})
	if te != nil {
		t.Fatalf("transient failure not retried to success: %v", te)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}

	// Budget exhausted: the last transient error is reported with its
	// retry count.
	calls = 0
	te = runWithRetry(1, "synthesis", 2, func() error {
		calls++
		return &TransientError{Err: errors.New("busy")}
	})
	if te == nil || calls != 3 || te.Retries != 2 {
		t.Fatalf("calls=%d te=%+v, want 3 calls and 2 retries", calls, te)
	}
	if !IsTransient(te.Err) {
		t.Error("transient marker lost")
	}

	// Non-transient errors never retry.
	calls = 0
	te = runWithRetry(1, "synthesis", 5, func() error { calls++; return errors.New("fatal") })
	if te == nil || calls != 1 {
		t.Fatalf("non-transient error retried: calls=%d", calls)
	}
}

func TestDegradationRecordDedup(t *testing.T) {
	var d Degradation
	d.recordThreadError(&ThreadError{TID: 5, Stage: "synthesis", Err: errors.New("x")})
	d.recordThreadError(&ThreadError{TID: 2, Stage: "reconstruct", Err: errors.New("y")})
	d.recordThreadError(&ThreadError{TID: 5, Stage: "reconstruct", Err: errors.New("z")})
	if len(d.ThreadErrors) != 3 {
		t.Fatalf("thread errors = %d", len(d.ThreadErrors))
	}
	if len(d.DroppedThreads) != 2 || d.DroppedThreads[0] != 2 || d.DroppedThreads[1] != 5 {
		t.Fatalf("dropped = %v, want [2 5]", d.DroppedThreads)
	}
	if !d.Degraded() {
		t.Error("thread errors must mark the run degraded")
	}
	if s := d.Summary(); !strings.Contains(s, "tid 5") || !strings.Contains(s, "dropped threads") {
		t.Errorf("summary incomplete:\n%s", s)
	}
}

func TestSanitizeTraceDropsImpossibleTIDs(t *testing.T) {
	tr := &tracefmt.Trace{
		PEBS: map[int32][]tracefmt.PEBSRecord{
			1:  {{TID: 1, IP: 0x10}},
			-7: {{TID: -7, IP: 0x10}},
		},
		PT: map[int32][]byte{1: {0}, 1 << 30: {0}},
		Sync: []tracefmt.SyncRecord{
			{TID: 1, Kind: tracefmt.SyncLock, Addr: 0x100},
			{TID: 2_000_000_000, Kind: tracefmt.SyncUnlock, Addr: 0x100},
			// Peer TID in Addr: a huge "child" would grow a vector clock
			// to that index.
			{TID: 1, Kind: tracefmt.SyncThreadCreate, Addr: 1 << 40},
			{TID: 1, Kind: tracefmt.SyncThreadJoin, Addr: 2},
			// An exabyte-sized allocation would spin the generation walk.
			{TID: 1, Kind: tracefmt.SyncMalloc, Addr: 0x1000, Aux: 1 << 60},
		},
	}
	var deg Degradation
	if _, err := sanitizeTrace(tr, true, &deg); err == nil {
		t.Fatal("strict mode accepted impossible thread ids")
	}
	out, err := sanitizeTrace(tr, false, &deg)
	if err != nil {
		t.Fatal(err)
	}
	if deg.InvalidTIDDrops != 5 || !deg.Degraded() {
		t.Fatalf("drops = %d, want 5", deg.InvalidTIDDrops)
	}
	if len(out.PEBS) != 1 || len(out.PT) != 1 || len(out.Sync) != 2 {
		t.Fatalf("sanitized trace kept %d/%d/%d, want 1/1/2",
			len(out.PEBS), len(out.PT), len(out.Sync))
	}
	if len(tr.PEBS) != 2 || len(tr.PT) != 2 || len(tr.Sync) != 5 {
		t.Fatal("sanitizeTrace mutated the input trace")
	}

	// A clean trace passes through untouched, same pointer.
	var cleanDeg Degradation
	clean, err := sanitizeTrace(out, true, &cleanDeg)
	if err != nil || clean != out || cleanDeg.Degraded() {
		t.Fatalf("clean trace did not pass through: %v", err)
	}
}

// reportKeys extracts sorted report keys for order-insensitive comparison.
func reportKeys(res *AnalysisResult) [][2]uint64 {
	ks := make([][2]uint64, 0, len(res.Reports))
	for _, r := range res.Reports {
		ks = append(ks, r.Key())
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i][0] != ks[j][0] {
			return ks[i][0] < ks[j][0]
		}
		return ks[i][1] < ks[j][1]
	})
	return ks
}

func TestStrictLenientIdenticalOnCleanTrace(t *testing.T) {
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 2, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, -1} {
		for _, shards := range []int{1, 4} {
			opts := AnalysisOptions{
				Mode: replay.ModeForwardBackward, Workers: workers, DetectShards: shards,
			}
			strictOpts := opts
			strictOpts.Strict = true
			lenient, err := Analyze(built.Workload.Program, tr.Trace, opts)
			if err != nil {
				t.Fatalf("w=%d s=%d lenient: %v", workers, shards, err)
			}
			strict, err := Analyze(built.Workload.Program, tr.Trace, strictOpts)
			if err != nil {
				t.Fatalf("w=%d s=%d strict: %v", workers, shards, err)
			}
			if lenient.Degradation.Degraded() {
				t.Fatalf("w=%d s=%d: clean trace marked degraded: %s",
					workers, shards, lenient.Degradation.Summary())
			}
			if lenient.ReplayStats != strict.ReplayStats {
				t.Fatalf("w=%d s=%d: replay stats differ", workers, shards)
			}
			lk, sk := reportKeys(lenient), reportKeys(strict)
			if len(lk) != len(sk) {
				t.Fatalf("w=%d s=%d: %d lenient vs %d strict reports",
					workers, shards, len(lk), len(sk))
			}
			for i := range lk {
				if lk[i] != sk[i] {
					t.Fatalf("w=%d s=%d: report %d differs", workers, shards, i)
				}
			}
			for _, r := range lenient.Reports {
				if r.GapAdjacent {
					t.Fatalf("clean-trace report flagged gap-adjacent")
				}
			}
		}
	}
}

func TestStrictAbortsOnCorruptPT(t *testing.T) {
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	tr, err := TraceProgram(built.Workload.Program, TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 2, EnablePT: true,
		Machine: built.Workload.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := &faultinject.Spec{Seed: 11, Faults: []faultinject.Fault{{Kind: faultinject.PTFlip, Rate: 0.2}}}

	strict := AnalysisOptions{Mode: replay.ModeForwardBackward, Strict: true, FaultSpec: spec}
	if _, err := Analyze(built.Workload.Program, tr.Trace, strict); err == nil {
		t.Fatal("strict analysis of heavily corrupted PT succeeded")
	}

	lenient := AnalysisOptions{Mode: replay.ModeForwardBackward, FaultSpec: spec, DecodeMaxSteps: 1 << 20}
	res, err := Analyze(built.Workload.Program, tr.Trace, lenient)
	if err != nil {
		t.Fatalf("lenient analysis failed outright: %v", err)
	}
	deg := &res.Degradation
	if !deg.Degraded() || deg.Injected == "" {
		t.Fatalf("degradation not recorded: %+v", deg)
	}
	if deg.CorruptPTPackets == 0 && deg.DecodeGaps == 0 {
		t.Error("20% bit flips produced no recorded decode damage")
	}
}

// TestFaultMatrix drives every injector over every Table 2 bug at 1%, 10%
// and 50%: the lenient analysis must survive all of it (no panic, no hard
// error) with the damage accounted.
func TestFaultMatrix(t *testing.T) {
	bugList := bugs.All()
	if testing.Short() {
		bugList = bugList[:3]
	}
	rates := []float64{0.01, 0.1, 0.5}
	for _, bug := range bugList {
		built := bug.Build(1)
		tr, err := TraceProgram(built.Workload.Program, TraceOptions{
			Kind: driver.ProRace, Period: 100, Seed: 5, EnablePT: true,
			Machine: built.Workload.Machine,
		})
		if err != nil {
			t.Fatalf("%s: trace: %v", bug.ID, err)
		}
		for _, kind := range faultinject.Kinds {
			for _, rate := range rates {
				name := fmt.Sprintf("%s/%s@%g", bug.ID, kind, rate)
				spec := &faultinject.Spec{Seed: 5, Faults: []faultinject.Fault{{Kind: kind, Rate: rate}}}
				// The tight decode budget keeps the 12×6×3 matrix fast; the
				// matrix checks survival and accounting, not recall (the
				// faults experiment measures recall with a full budget).
				res, err := Analyze(built.Workload.Program, tr.Trace, AnalysisOptions{
					Mode: replay.ModeForwardBackward, FaultSpec: spec, DecodeMaxSteps: 1 << 15,
				})
				if err != nil {
					t.Fatalf("%s: lenient analysis errored: %v", name, err)
				}
				if !res.Degradation.Degraded() {
					t.Fatalf("%s: injected faults but Degradation empty", name)
				}
				if res.Degradation.Injected != spec.String() {
					t.Fatalf("%s: Injected = %q", name, res.Degradation.Injected)
				}
			}
		}
	}
}
