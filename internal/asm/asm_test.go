package asm

import (
	"testing"

	"prorace/internal/isa"
)

func TestBuildSimpleProgram(t *testing.T) {
	b := New("t")
	b.Global("counter", 8)
	m := b.Func("main")
	m.MovI(isa.R1, 5)
	m.Label("loop")
	m.Load(isa.R0, Global("counter", 0))
	m.AddI(isa.R0, 1)
	m.Store(Global("counter", 0), isa.R0)
	m.SubI(isa.R1, 1)
	m.CmpI(isa.R1, 0)
	m.Jne("loop")
	m.Exit(0)

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != isa.CodeBase {
		t.Errorf("entry = %#x", p.Entry)
	}
	// The backward branch targets the instruction after MOVI.
	var jne isa.Inst
	for _, in := range p.Insts {
		if in.Op == isa.JNE {
			jne = in
		}
	}
	if jne.Imm != int64(isa.IndexToAddr(1)) {
		t.Errorf("jne target = %#x, want %#x", uint64(jne.Imm), isa.IndexToAddr(1))
	}
	// PC-relative loads must resolve to the global's address.
	sym := p.MustLookup("counter")
	for k, in := range p.Insts {
		if in.Op == isa.LOAD && in.Mode == isa.ModePCRel {
			pc := isa.IndexToAddr(k)
			got := in.EffectiveAddress(func(isa.Reg) uint64 { return 0 }, pc)
			if got != sym.Addr {
				t.Errorf("inst %d: pcrel resolves to %#x, want %#x", k, got, sym.Addr)
			}
		}
	}
}

func TestGlobalPlacementAndAlignment(t *testing.T) {
	b := New("t")
	a1 := b.GlobalInit("a", []byte{1, 2, 3}) // 3 bytes, next global must align
	a2 := b.Global("b", 8)
	if a1 != isa.DataBase {
		t.Errorf("first global at %#x", a1)
	}
	if a2%8 != 0 || a2 <= a1 {
		t.Errorf("second global misaligned: %#x", a2)
	}
	a3 := b.GlobalWords("w", []uint64{0xDEADBEEF, 42})
	m := b.Func("main")
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := p.MustLookup("w")
	if s.Addr != a3 || s.Size != 16 {
		t.Errorf("words symbol = %+v", s)
	}
	off := a3 - isa.DataBase
	if p.Data[off] != 0xEF || p.Data[off+1] != 0xBE || p.Data[off+8] != 42 {
		t.Errorf("word encoding wrong: % x", p.Data[off:off+16])
	}
}

func TestForwardLabelReference(t *testing.T) {
	b := New("t")
	m := b.Func("main")
	m.MovI(isa.R0, 1)
	m.CmpI(isa.R0, 0)
	m.Jeq("done") // forward reference
	m.MovI(isa.R1, 2)
	m.Label("done")
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Imm != int64(isa.IndexToAddr(4)) {
		t.Errorf("forward jeq target = %#x, want %#x", uint64(p.Insts[2].Imm), isa.IndexToAddr(4))
	}
}

func TestLabelsAreFunctionScoped(t *testing.T) {
	b := New("t")
	f1 := b.Func("main")
	f1.Label("loop")
	f1.Jmp("loop")
	f2 := b.Func("worker")
	f2.Label("loop") // same label name, different function
	f2.Jmp("loop")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != int64(isa.IndexToAddr(0)) {
		t.Errorf("main loop target = %#x", uint64(p.Insts[0].Imm))
	}
	if p.Insts[1].Imm != int64(isa.IndexToAddr(1)) {
		t.Errorf("worker loop target = %#x", uint64(p.Insts[1].Imm))
	}
}

func TestCallAndMovSym(t *testing.T) {
	b := New("t")
	b.Global("g", 8)
	m := b.Func("main")
	m.Call("helper")
	m.MovSym(isa.R2, "helper", 0)
	m.MovSym(isa.R3, "g", 8)
	m.Exit(0)
	h := b.Func("helper")
	h.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	helperAddr := p.MustLookup("helper").Addr
	if p.Insts[0].Imm != int64(helperAddr) {
		t.Errorf("call target = %#x, want %#x", uint64(p.Insts[0].Imm), helperAddr)
	}
	if p.Insts[1].Imm != int64(helperAddr) {
		t.Errorf("movsym = %#x, want %#x", uint64(p.Insts[1].Imm), helperAddr)
	}
	gAddr := p.MustLookup("g").Addr
	if p.Insts[2].Imm != int64(gAddr+8) {
		t.Errorf("movsym+off = %#x, want %#x", uint64(p.Insts[2].Imm), gAddr+8)
	}
}

func TestGlobalAbsOperand(t *testing.T) {
	b := New("t")
	addr := b.Global("g", 8)
	m := b.Func("main")
	m.Load(isa.R0, GlobalAbs("g", 0))
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := p.Insts[0]
	if in.Mode != isa.ModeAbs || uint64(in.Disp) != addr {
		t.Errorf("abs operand = %+v, want disp %#x", in, addr)
	}
}

func TestBuildErrors(t *testing.T) {
	// Undefined label.
	b := New("t")
	m := b.Func("main")
	m.Jmp("nowhere")
	m.Exit(0)
	if _, err := b.Build(); err == nil {
		t.Error("undefined label must fail")
	}
	// Duplicate global.
	b = New("t")
	b.Global("g", 8)
	b.Global("g", 8)
	f := b.Func("main")
	f.Exit(0)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate global must fail")
	}
	// Duplicate label.
	b = New("t")
	f = b.Func("main")
	f.Label("x")
	f.Label("x")
	f.Exit(0)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label must fail")
	}
	// Missing entry.
	b = New("t")
	f = b.Func("notmain")
	f.Exit(0)
	if _, err := b.Build(); err == nil {
		t.Error("missing main must fail")
	}
	// Call to a data symbol.
	b = New("t")
	b.Global("d", 8)
	f = b.Func("main")
	f.Call("d")
	f.Exit(0)
	if _, err := b.Build(); err == nil {
		t.Error("call to data symbol must fail")
	}
	// Build never panics on malformed input: it returns the error.
	b = New("t")
	f = b.Func("main")
	f.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("jump to undefined label must fail")
	}
}

func TestSetEntry(t *testing.T) {
	b := New("t")
	f := b.Func("start")
	f.Exit(0)
	b.SetEntry("start")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.MustLookup("start").Addr {
		t.Error("entry not set to start")
	}
}

func TestSyscallHelpers(t *testing.T) {
	b := New("t")
	b.Global("lk", 8)
	m := b.Func("main")
	m.Lock("lk")
	m.Unlock("lk")
	m.SpawnThread("worker", isa.R4)
	m.Join(isa.R5)
	m.NetIO(4096)
	m.FileIO(512)
	m.Exit(0)
	w := b.Func("worker")
	w.Exit(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sys []isa.Sys
	for _, in := range p.Insts {
		if in.Op == isa.SYSCALL {
			sys = append(sys, in.Sys)
		}
	}
	want := []isa.Sys{isa.SysLock, isa.SysUnlock, isa.SysThreadCreate, isa.SysThreadJoin,
		isa.SysNetIO, isa.SysFileIO, isa.SysExit, isa.SysExit}
	if len(sys) != len(want) {
		t.Fatalf("syscalls = %v, want %v", sys, want)
	}
	for i := range want {
		if sys[i] != want[i] {
			t.Errorf("syscall %d = %v, want %v", i, sys[i], want[i])
		}
	}
	// Lock helper computes the lock address via LEA of a pcrel operand.
	if p.Insts[0].Op != isa.LEA || p.Insts[0].Mode != isa.ModePCRel {
		t.Errorf("lock prologue = %v", p.Insts[0])
	}
}

func TestBaseIndexDefaultScale(t *testing.T) {
	b := New("t")
	m := b.Func("main")
	m.Load(isa.R0, BaseIndex(isa.R1, isa.R2, 0, 0)) // scale 0 -> default 1
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Scale != 1 {
		t.Errorf("default scale = %d, want 1", p.Insts[0].Scale)
	}
}
