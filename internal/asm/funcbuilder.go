package asm

import (
	"prorace/internal/isa"
)

// FuncBuilder emits instructions for one function. Labels are scoped to
// the function; Jmp/branch targets name either a local label or another
// function.
type FuncBuilder struct {
	b      *Builder
	name   string
	labels map[string]int // label -> instruction index
}

func (f *FuncBuilder) emit(in isa.Inst) int {
	idx := len(f.b.insts)
	f.b.insts = append(f.b.insts, in)
	return idx
}

func (f *FuncBuilder) emitMem(in isa.Inst, m Mem) int {
	in.Mode = m.mode
	in.Base = m.base
	in.Index = m.index
	in.Scale = m.scale
	in.Disp = m.disp
	if m.mode == isa.ModeBaseIndex && in.Scale == 0 {
		in.Scale = 1
	}
	idx := f.emit(in)
	if m.sym != "" {
		kind := fixPCRel
		if m.symAbs {
			kind = fixAbsSym
		}
		f.b.fixups = append(f.b.fixups, fixup{kind: kind, inst: idx, sym: m.sym})
	}
	return idx
}

// Label defines a function-scoped label at the current position.
func (f *FuncBuilder) Label(name string) {
	if _, dup := f.labels[name]; dup {
		f.b.errorf("duplicate label %q in %s", name, f.name)
	}
	f.labels[name] = len(f.b.insts)
}

func (f *FuncBuilder) branchTo(op isa.Op, target string) {
	idx := f.emit(isa.Inst{Op: op})
	f.b.fixups = append(f.b.fixups, fixup{kind: fixBranch, inst: idx, sym: target, scope: f.name})
}

// --- data movement ---

// MovI sets rd to an immediate.
func (f *FuncBuilder) MovI(rd isa.Reg, imm int64) { f.emit(isa.Inst{Op: isa.MOVI, Rd: rd, Imm: imm}) }

// MovSym sets rd to the address of a symbol (function or global) plus off.
func (f *FuncBuilder) MovSym(rd isa.Reg, sym string, off int64) {
	idx := f.emit(isa.Inst{Op: isa.MOVI, Rd: rd, Imm: off})
	f.b.fixups = append(f.b.fixups, fixup{kind: fixImmSym, inst: idx, sym: sym})
}

// Mov copies rs into rd.
func (f *FuncBuilder) Mov(rd, rs isa.Reg) { f.emit(isa.Inst{Op: isa.MOV, Rd: rd, Rs: rs}) }

// Lea computes the effective address of m into rd.
func (f *FuncBuilder) Lea(rd isa.Reg, m Mem) { f.emitMem(isa.Inst{Op: isa.LEA, Rd: rd}, m) }

// Load reads 8 bytes at m into rd.
func (f *FuncBuilder) Load(rd isa.Reg, m Mem) int {
	return f.emitMem(isa.Inst{Op: isa.LOAD, Rd: rd}, m)
}

// Store writes rs to the 8 bytes at m.
func (f *FuncBuilder) Store(m Mem, rs isa.Reg) int {
	return f.emitMem(isa.Inst{Op: isa.STORE, Rs: rs}, m)
}

// --- arithmetic ---

// Op2 emits a register-register ALU operation rd = rd op rs.
func (f *FuncBuilder) Op2(op isa.Op, rd, rs isa.Reg) { f.emit(isa.Inst{Op: op, Rd: rd, Rs: rs}) }

// OpI emits an immediate ALU operation rd = rd op imm.
func (f *FuncBuilder) OpI(op isa.Op, rd isa.Reg, imm int64) {
	f.emit(isa.Inst{Op: op, Rd: rd, Imm: imm})
}

// Add emits rd += rs.
func (f *FuncBuilder) Add(rd, rs isa.Reg) { f.Op2(isa.ADD, rd, rs) }

// Sub emits rd -= rs.
func (f *FuncBuilder) Sub(rd, rs isa.Reg) { f.Op2(isa.SUB, rd, rs) }

// Mul emits rd *= rs.
func (f *FuncBuilder) Mul(rd, rs isa.Reg) { f.Op2(isa.MUL, rd, rs) }

// Xor emits rd ^= rs.
func (f *FuncBuilder) Xor(rd, rs isa.Reg) { f.Op2(isa.XOR, rd, rs) }

// And emits rd &= rs.
func (f *FuncBuilder) And(rd, rs isa.Reg) { f.Op2(isa.AND, rd, rs) }

// Or emits rd |= rs.
func (f *FuncBuilder) Or(rd, rs isa.Reg) { f.Op2(isa.OR, rd, rs) }

// AddI emits rd += imm (reverse-executable).
func (f *FuncBuilder) AddI(rd isa.Reg, imm int64) { f.OpI(isa.ADDI, rd, imm) }

// SubI emits rd -= imm (reverse-executable).
func (f *FuncBuilder) SubI(rd isa.Reg, imm int64) { f.OpI(isa.SUBI, rd, imm) }

// MulI emits rd *= imm.
func (f *FuncBuilder) MulI(rd isa.Reg, imm int64) { f.OpI(isa.MULI, rd, imm) }

// AndI emits rd &= imm.
func (f *FuncBuilder) AndI(rd isa.Reg, imm int64) { f.OpI(isa.ANDI, rd, imm) }

// OrI emits rd |= imm.
func (f *FuncBuilder) OrI(rd isa.Reg, imm int64) { f.OpI(isa.ORI, rd, imm) }

// XorI emits rd ^= imm (reverse-executable).
func (f *FuncBuilder) XorI(rd isa.Reg, imm int64) { f.OpI(isa.XORI, rd, imm) }

// ShlI emits rd <<= imm.
func (f *FuncBuilder) ShlI(rd isa.Reg, imm int64) { f.OpI(isa.SHLI, rd, imm) }

// ShrI emits rd >>= imm.
func (f *FuncBuilder) ShrI(rd isa.Reg, imm int64) { f.OpI(isa.SHRI, rd, imm) }

// --- comparison and control flow ---

// Cmp compares two registers, setting flags.
func (f *FuncBuilder) Cmp(a, b isa.Reg) { f.emit(isa.Inst{Op: isa.CMP, Rd: a, Rs: b}) }

// CmpI compares a register with an immediate, setting flags.
func (f *FuncBuilder) CmpI(a isa.Reg, imm int64) { f.emit(isa.Inst{Op: isa.CMPI, Rd: a, Imm: imm}) }

// Jmp jumps unconditionally to a label or function.
func (f *FuncBuilder) Jmp(target string) { f.branchTo(isa.JMP, target) }

// Jeq branches if the last comparison was equal.
func (f *FuncBuilder) Jeq(target string) { f.branchTo(isa.JEQ, target) }

// Jne branches if the last comparison was unequal.
func (f *FuncBuilder) Jne(target string) { f.branchTo(isa.JNE, target) }

// Jlt branches on signed less-than.
func (f *FuncBuilder) Jlt(target string) { f.branchTo(isa.JLT, target) }

// Jle branches on signed less-or-equal.
func (f *FuncBuilder) Jle(target string) { f.branchTo(isa.JLE, target) }

// Jgt branches on signed greater-than.
func (f *FuncBuilder) Jgt(target string) { f.branchTo(isa.JGT, target) }

// Jge branches on signed greater-or-equal.
func (f *FuncBuilder) Jge(target string) { f.branchTo(isa.JGE, target) }

// JmpR jumps to the address in rs (indirect).
func (f *FuncBuilder) JmpR(rs isa.Reg) { f.emit(isa.Inst{Op: isa.JMPR, Rs: rs}) }

// Call calls a function by name.
func (f *FuncBuilder) Call(fn string) {
	idx := f.emit(isa.Inst{Op: isa.CALL})
	f.b.fixups = append(f.b.fixups, fixup{kind: fixCallee, inst: idx, sym: fn})
}

// CallR calls through the address in rs (indirect).
func (f *FuncBuilder) CallR(rs isa.Reg) { f.emit(isa.Inst{Op: isa.CALLR, Rs: rs}) }

// Ret returns from the current function.
func (f *FuncBuilder) Ret() { f.emit(isa.Inst{Op: isa.RET}) }

// Nop emits a no-op.
func (f *FuncBuilder) Nop() { f.emit(isa.Inst{Op: isa.NOP}) }

// Halt stops the executing thread.
func (f *FuncBuilder) Halt() { f.emit(isa.Inst{Op: isa.HALT}) }

// --- syscalls ---

// Syscall emits a raw syscall.
func (f *FuncBuilder) Syscall(s isa.Sys) { f.emit(isa.Inst{Op: isa.SYSCALL, Sys: s}) }

// Exit terminates the thread with the code in R0.
func (f *FuncBuilder) Exit(code int64) {
	f.MovI(isa.R0, code)
	f.Syscall(isa.SysExit)
}

// Lock acquires the mutex whose address is the named global.
func (f *FuncBuilder) Lock(lockSym string) {
	f.Lea(isa.R0, Global(lockSym, 0))
	f.Syscall(isa.SysLock)
}

// Unlock releases the mutex whose address is the named global.
func (f *FuncBuilder) Unlock(lockSym string) {
	f.Lea(isa.R0, Global(lockSym, 0))
	f.Syscall(isa.SysUnlock)
}

// SpawnThread starts fn in a new thread with arg in the child's R0 and
// leaves the thread ID in R0.
func (f *FuncBuilder) SpawnThread(fn string, arg isa.Reg) {
	f.MovSym(isa.R0, fn, 0)
	if arg != isa.R1 {
		f.Mov(isa.R1, arg)
	}
	f.Syscall(isa.SysThreadCreate)
}

// Join blocks until the thread whose ID is in rs exits.
func (f *FuncBuilder) Join(rs isa.Reg) {
	if rs != isa.R0 {
		f.Mov(isa.R0, rs)
	}
	f.Syscall(isa.SysThreadJoin)
}

// NetIO performs n bytes of simulated network I/O.
func (f *FuncBuilder) NetIO(n int64) {
	f.MovI(isa.R0, n)
	f.Syscall(isa.SysNetIO)
}

// FileIO performs n bytes of simulated file I/O.
func (f *FuncBuilder) FileIO(n int64) {
	f.MovI(isa.R0, n)
	f.Syscall(isa.SysFileIO)
}

// resolveLabel finds a function-scoped label's instruction index.
func (f *FuncBuilder) resolveLabel(name string) (int, bool) {
	idx, ok := f.labels[name]
	return idx, ok
}
