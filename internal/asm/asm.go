// Package asm provides a small assembler for building programs for the
// simulated machine. Workloads, bug reproducers and tests use it the way
// the paper's evaluation uses compiled C: as the means of producing the
// binaries that the tracer observes and the replay engine re-executes.
//
// The builder supports named globals in the data segment, labels with
// forward references, and symbolic memory operands in every addressing
// mode, including PC-relative operands whose displacement is fixed up
// against the final instruction address.
//
// Note on CALL/RET: the machine keeps return addresses on a per-thread
// shadow call stack rather than in addressable memory (see
// internal/machine). CALL and RET therefore produce no PEBS load/store
// events, and RET targets are resolved offline from PT TIP packets —
// exactly how a hardware PT decoder resolves returns.
package asm

import (
	"fmt"

	"prorace/internal/isa"
	"prorace/internal/prog"
)

// Mem describes a memory operand. Construct values with Base, BaseIndex,
// Abs, Global or GlobalIdx rather than directly.
type Mem struct {
	mode   isa.Mode
	base   isa.Reg
	index  isa.Reg
	scale  uint8
	disp   int64
	sym    string // data symbol for PC-relative / absolute-symbol operands
	symAbs bool   // true: symbol resolved as absolute, false: PC-relative
}

// Base addresses [r + disp].
func Base(r isa.Reg, disp int64) Mem { return Mem{mode: isa.ModeBase, base: r, disp: disp} }

// BaseIndex addresses [base + index*scale + disp].
func BaseIndex(base, index isa.Reg, scale uint8, disp int64) Mem {
	return Mem{mode: isa.ModeBaseIndex, base: base, index: index, scale: scale, disp: disp}
}

// Abs addresses the absolute location addr.
func Abs(addr uint64) Mem { return Mem{mode: isa.ModeAbs, disp: int64(addr)} }

// Global addresses the named global PC-relatively (plus disp), the way
// position-independent x86-64 code addresses its globals. These are the
// accesses ProRace can always reconstruct offline.
func Global(name string, disp int64) Mem {
	return Mem{mode: isa.ModePCRel, sym: name, disp: disp}
}

// GlobalAbs addresses the named global by absolute address (plus disp),
// as non-PIC code would.
func GlobalAbs(name string, disp int64) Mem {
	return Mem{mode: isa.ModeAbs, sym: name, symAbs: true, disp: disp}
}

// Builder assembles one program.
type Builder struct {
	name    string
	insts   []isa.Inst
	fixups  []fixup
	data    []byte
	symbols map[string]*symEntry
	order   []string // symbol emission order, for stable output
	funcs   []funcSpan
	fbs     map[string]*FuncBuilder
	entry   string
	errs    []error
}

type symEntry struct {
	kind prog.SymKind
	addr uint64 // data symbols: final address; funcs: set at Build
	size uint64
	inst int // funcs: instruction index of entry
	def  bool
}

type funcSpan struct {
	name       string
	start, end int
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // Imm <- address of label
	fixCallee                  // Imm <- address of function
	fixPCRel                   // Disp <- symbol addr - (inst addr + InstSize) + disp
	fixAbsSym                  // Disp <- symbol addr + disp
	fixImmSym                  // Imm  <- symbol addr + imm (for MOVI of addresses)
)

type fixup struct {
	kind  fixupKind
	inst  int
	sym   string
	scope string // function name for label scoping; "" for global symbols
}

// New returns a Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{name: name, symbols: map[string]*symEntry{}, fbs: map[string]*FuncBuilder{}}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm %s: "+format, append([]any{b.name}, args...)...))
}

// Global reserves size zeroed bytes in the data segment for a named global
// aligned to 8 bytes, and returns its address.
func (b *Builder) Global(name string, size uint64) uint64 {
	return b.GlobalInit(name, make([]byte, size))
}

// GlobalInit places initialised bytes in the data segment under a name and
// returns the address.
func (b *Builder) GlobalInit(name string, init []byte) uint64 {
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate global %q", name)
		return 0
	}
	for len(b.data)%8 != 0 {
		b.data = append(b.data, 0)
	}
	addr := isa.DataBase + uint64(len(b.data))
	b.data = append(b.data, init...)
	b.symbols[name] = &symEntry{kind: prog.SymData, addr: addr, size: uint64(len(init)), def: true}
	b.order = append(b.order, name)
	return addr
}

// NextDataAddr returns the address the next Global/GlobalInit call will
// place its object at (8-byte aligned). It lets statically initialised
// data contain pointers to itself or to objects laid out right after it.
func (b *Builder) NextDataAddr() uint64 {
	n := uint64(len(b.data))
	n = (n + 7) &^ 7
	return isa.DataBase + n
}

// GlobalWords is GlobalInit for a slice of 64-bit words.
func (b *Builder) GlobalWords(name string, words []uint64) uint64 {
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		for k := 0; k < 8; k++ {
			buf[i*8+k] = byte(w >> (8 * k))
		}
	}
	return b.GlobalInit(name, buf)
}

// Func begins a new function. Instructions are emitted through the returned
// FuncBuilder until the next Func call or Build.
func (b *Builder) Func(name string) *FuncBuilder {
	b.closeFunc()
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate symbol %q", name)
	}
	b.symbols[name] = &symEntry{kind: prog.SymFunc, inst: len(b.insts), def: true}
	b.order = append(b.order, name)
	b.funcs = append(b.funcs, funcSpan{name: name, start: len(b.insts), end: -1})
	fb := &FuncBuilder{b: b, name: name, labels: map[string]int{}}
	b.fbs[name] = fb
	return fb
}

func (b *Builder) closeFunc() {
	if n := len(b.funcs); n > 0 && b.funcs[n-1].end < 0 {
		b.funcs[n-1].end = len(b.insts)
	}
}

// SetEntry selects the function where thread 0 starts. Defaults to "main".
func (b *Builder) SetEntry(fn string) { b.entry = fn }

// Build resolves all fixups and returns the validated program.
func (b *Builder) Build() (*prog.Program, error) {
	b.closeFunc()
	// Assign function addresses.
	for _, f := range b.funcs {
		b.symbols[f.name].addr = isa.IndexToAddr(f.start)
		b.symbols[f.name].size = uint64(f.end-f.start) * isa.InstSize
	}
	// Apply fixups. Branch fixups resolve against the emitting function's
	// labels first, then against global function symbols.
	for _, fx := range b.fixups {
		in := &b.insts[fx.inst]
		if fx.kind == fixBranch {
			if fb := b.fbs[fx.scope]; fb != nil {
				if idx, ok := fb.resolveLabel(fx.sym); ok {
					in.Imm = int64(isa.IndexToAddr(idx))
					continue
				}
			}
		}
		s, ok := b.symbols[fx.sym]
		if !ok || !s.def {
			b.errorf("undefined symbol %q referenced by instruction %d", fx.sym, fx.inst)
			continue
		}
		switch fx.kind {
		case fixBranch, fixCallee:
			if s.kind != prog.SymFunc && fx.kind == fixCallee {
				b.errorf("call target %q is not a function", fx.sym)
				continue
			}
			in.Imm = int64(s.addr)
		case fixPCRel:
			instAddr := isa.IndexToAddr(fx.inst)
			in.Disp += int64(s.addr) - int64(instAddr+isa.InstSize)
		case fixAbsSym:
			in.Disp += int64(s.addr)
		case fixImmSym:
			in.Imm += int64(s.addr)
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &prog.Program{Name: b.name, Insts: b.insts, Data: b.data}
	for _, name := range b.order {
		s := b.symbols[name]
		p.Symbols = append(p.Symbols, prog.Symbol{Name: name, Addr: s.addr, Size: s.size, Kind: s.kind})
	}
	entry := b.entry
	if entry == "" {
		entry = "main"
	}
	es, ok := b.symbols[entry]
	if !ok || es.kind != prog.SymFunc {
		return nil, fmt.Errorf("asm %s: entry function %q not defined", b.name, entry)
	}
	p.Entry = es.addr
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
