package race

import (
	"testing"

	"prorace/internal/replay"
	"prorace/internal/tracefmt"
)

// shardScenario builds a trace with many racy addresses spread across the
// address space, plus lock-ordered accesses that must stay quiet.
func shardScenario() ([]tracefmt.SyncRecord, map[int32][]replay.Access) {
	lock := uint64(0x700000)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncLock, 10, lock, 0),
		syncRec(1, tracefmt.SyncUnlock, 30, lock, 0),
		syncRec(2, tracefmt.SyncLock, 40, lock, 0),
		syncRec(2, tracefmt.SyncUnlock, 60, lock, 0),
	}
	accesses := map[int32][]replay.Access{}
	// Lock-ordered pair on one address.
	accesses[1] = append(accesses[1], acc(1, 0x400000, 0x500000, true, 20))
	accesses[2] = append(accesses[2], acc(2, 0x400010, 0x500000, true, 50))
	// 64 unordered racy pairs on distinct addresses and PCs.
	for i := 0; i < 64; i++ {
		addr := 0x600000 + uint64(i)*0x1000
		accesses[1] = append(accesses[1], acc(1, 0x410000+uint64(i)*16, addr, true, uint64(100+i)))
		accesses[2] = append(accesses[2], acc(2, 0x420000+uint64(i)*16, addr, true, uint64(200+i)))
	}
	return sync, accesses
}

func keySet(rs []Report) map[[2]uint64]bool {
	out := map[[2]uint64]bool{}
	for _, r := range rs {
		out[r.Key()] = true
	}
	return out
}

func TestShardedMatchesSequentialAcrossShardCounts(t *testing.T) {
	sync, accesses := shardScenario()
	seq := Detect(sync, accesses, Options{TrackAllocations: true})
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		sh := DetectSharded(sync, accesses, shards, Options{TrackAllocations: true})
		if got, want := len(sh.Reports()), len(seq.Reports()); got != want {
			t.Fatalf("%d shards: %d reports, want %d", shards, got, want)
		}
		// Not only the same set: the same deterministic order.
		for i, r := range sh.Reports() {
			if r.Key() != seq.Reports()[i].Key() {
				t.Fatalf("%d shards: report %d is %v, want %v", shards, i, r.Key(), seq.Reports()[i].Key())
			}
		}
		if got, want := len(sh.RacyAddrSet()), len(seq.RacyAddrSet()); got != want {
			t.Fatalf("%d shards: %d racy addrs, want %d", shards, got, want)
		}
		for addr := range seq.RacyAddrSet() {
			if !sh.RacyAddrSet()[addr] {
				t.Fatalf("%d shards: racy addr %#x missing", shards, addr)
			}
		}
	}
}

func TestShardedDeterministicAcrossRuns(t *testing.T) {
	sync, accesses := shardScenario()
	first := DetectSharded(sync, accesses, 5, Options{TrackAllocations: true})
	for run := 0; run < 5; run++ {
		again := DetectSharded(sync, accesses, 5, Options{TrackAllocations: true})
		if len(again.Reports()) != len(first.Reports()) {
			t.Fatalf("run %d: %d reports, want %d", run, len(again.Reports()), len(first.Reports()))
		}
		for i := range again.Reports() {
			if again.Reports()[i] != first.Reports()[i] {
				t.Fatalf("run %d: report %d differs", run, i)
			}
		}
	}
}

func TestShardedMaxReportsMatchesSequential(t *testing.T) {
	sync, accesses := shardScenario()
	opts := Options{TrackAllocations: true, MaxReports: 7}
	seq := Detect(sync, accesses, opts)
	sh := DetectSharded(sync, accesses, 4, opts)
	if len(sh.Reports()) != 7 || len(seq.Reports()) != 7 {
		t.Fatalf("max reports not enforced: sharded %d, sequential %d", len(sh.Reports()), len(seq.Reports()))
	}
	for i := range sh.Reports() {
		if sh.Reports()[i].Key() != seq.Reports()[i].Key() {
			t.Fatalf("bounded report %d differs: %v vs %v", i, sh.Reports()[i].Key(), seq.Reports()[i].Key())
		}
	}
}

func TestShardedCrossShardDeduplication(t *testing.T) {
	// One racy PC pair hitting many addresses: the addresses scatter across
	// shards, yet the merged output must contain exactly one report.
	var a1, a2 []replay.Access
	for i := 0; i < 50; i++ {
		a1 = append(a1, acc(1, 0x400100, 0x600000+uint64(i)*0x2000, true, uint64(100+i)))
		a2 = append(a2, acc(2, 0x400200, 0x600000+uint64(i)*0x2000, true, uint64(200+i)))
	}
	sh := DetectSharded(nil, map[int32][]replay.Access{1: a1, 2: a2}, 8, Options{TrackAllocations: true})
	if len(sh.Reports()) != 1 {
		t.Fatalf("cross-shard dedup failed: %d reports", len(sh.Reports()))
	}
	if len(sh.RacyAddrSet()) != 50 {
		t.Errorf("racy addresses = %d, want 50", len(sh.RacyAddrSet()))
	}
}

func TestShardedSyncBroadcastKeepsClocksConsistent(t *testing.T) {
	// The §4.3 address-reuse scenario relies on malloc generation tracking:
	// the malloc sync records must reach the shard owning the reused
	// address no matter how many shards exist.
	addr := uint64(0x10000000)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncMalloc, 10, addr, 64),
		syncRec(1, tracefmt.SyncFree, 120, addr, 0),
		syncRec(2, tracefmt.SyncMalloc, 150, addr, 64),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, addr, true, 100)},
		2: {acc(2, 0x400200, addr, true, 200)},
	}
	for _, shards := range []int{2, 7} {
		sh := DetectSharded(sync, accesses, shards, Options{TrackAllocations: true})
		if len(sh.Reports()) != 0 {
			t.Fatalf("%d shards: address reuse reported as race: %v", shards, sh.Reports())
		}
	}
}

func TestFeedStreamsMatchesFeed(t *testing.T) {
	sync, accesses := shardScenario()
	seq := Detect(sync, accesses, Options{TrackAllocations: true})

	// Deliver each thread's stream as size-3 chunks over channels.
	syncByTID := SyncByTID(sync)
	streams := map[int32]<-chan []Event{}
	for tid := range accesses {
		evs := ThreadStream(syncByTID[tid], accesses[tid])
		ch := make(chan []Event, 1)
		go func(evs []Event, ch chan []Event) {
			for len(evs) > 0 {
				n := 3
				if n > len(evs) {
					n = len(evs)
				}
				ch <- evs[:n]
				evs = evs[n:]
			}
			close(ch)
		}(evs, ch)
		streams[tid] = ch
	}
	d := NewDetector(Options{TrackAllocations: true})
	FeedStreams(d, streams)
	if len(d.Reports()) != len(seq.Reports()) {
		t.Fatalf("streamed feed: %d reports, want %d", len(d.Reports()), len(seq.Reports()))
	}
	for i := range d.Reports() {
		if d.Reports()[i] != seq.Reports()[i] {
			t.Fatalf("streamed report %d differs", i)
		}
	}
}
