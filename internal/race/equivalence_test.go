// Cross-detector equivalence suite: FastTrack, DJIT+, and the sharded
// parallel detector must agree on the set of reported races for every
// input — hand-built synchronization scenarios, every built-in workload,
// and all of the paper's Table 2 planted bugs. FastTrack's claim (and
// the sharded detector's design goal) is precision identical to the
// vector-clock baseline, so any divergence here is a detector bug.
//
// This file is an external test package so it can drive the full
// pipeline through internal/core, which itself imports internal/race.
package race_test

import (
	"fmt"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

var shardCounts = []int{1, 4, 7}

// workerCounts oversubscribes and undersubscribes the stripes: 1 worker
// serialises all stripes, 4 workers share 7 stripes (and idle at 1).
var workerCounts = []int{1, 4}

func eacc(tid int32, pc, addr uint64, store bool, tsc uint64) replay.Access {
	return replay.Access{TID: tid, PC: pc, Addr: addr, Store: store, TSC: tsc, Step: -1}
}

func esync(tid int32, kind tracefmt.SyncKind, tsc, addr, aux uint64) tracefmt.SyncRecord {
	return tracefmt.SyncRecord{TID: tid, Kind: kind, TSC: tsc, Addr: addr, Aux: aux}
}

func raceKeys(rs []race.Report) map[[2]uint64]bool {
	keys := make(map[[2]uint64]bool, len(rs))
	for _, r := range rs {
		keys[r.Key()] = true
	}
	return keys
}

func sameKeySet(a, b map[[2]uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkEquivalence feeds one (sync log, access map) input to every
// detector and requires identical deduplicated race-key sets. For the
// sharded detector the bar is higher: its report list must match
// sequential FastTrack's exactly, in order.
func checkEquivalence(t *testing.T, sync []tracefmt.SyncRecord, accs map[int32][]replay.Access) {
	t.Helper()
	opts := race.Options{TrackAllocations: true}

	ft := race.Detect(sync, accs, opts)
	want := raceKeys(ft.Reports())

	dj := race.DetectDjit(sync, accs, opts)
	if got := raceKeys(dj.Reports()); !sameKeySet(got, want) {
		t.Errorf("DJIT+ race set differs from FastTrack: %d keys vs %d", len(got), len(want))
	}

	// The map-based reference detector must match the flat-table detector
	// report-for-report — same keys, same order, same provenance.
	ref := race.NewReferenceDetector(opts)
	race.Feed(ref, sync, accs)
	if len(ref.Reports()) != len(ft.Reports()) {
		t.Fatalf("reference detector: %d reports, flat table has %d", len(ref.Reports()), len(ft.Reports()))
	}
	for i, r := range ref.Reports() {
		if r != ft.Reports()[i] {
			t.Fatalf("reference report %d differs from flat table:\n  ref:  %+v\n  flat: %+v", i, r, ft.Reports()[i])
		}
	}

	for _, n := range shardCounts {
		for _, m := range workerCounts {
			sopts := opts
			sopts.Workers = m
			sd := race.DetectSharded(sync, accs, n, sopts)
			if len(sd.Reports()) != len(ft.Reports()) {
				t.Fatalf("%d shards × %d workers: %d reports, FastTrack has %d", n, m, len(sd.Reports()), len(ft.Reports()))
			}
			for i, r := range sd.Reports() {
				if r.Key() != ft.Reports()[i].Key() {
					t.Fatalf("%d shards × %d workers: report %d key differs from FastTrack", n, m, i)
				}
			}
		}
	}
}

// scenario is one hand-built synchronization pattern.
type scenario struct {
	name string
	sync []tracefmt.SyncRecord
	accs map[int32][]replay.Access
}

func scenarios() []scenario {
	lock := uint64(0x700000)
	return []scenario{
		{
			name: "unsynchronized write-write",
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 100)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "write-read and read-write",
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 100)},
				2: {eacc(2, 0x400200, 0x600000, false, 200)},
				3: {eacc(3, 0x400300, 0x600000, true, 300)},
			},
		},
		{
			name: "lock ordering suppresses",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncLock, 90, lock, 0),
				esync(1, tracefmt.SyncUnlock, 110, lock, 0),
				esync(2, tracefmt.SyncLock, 190, lock, 0),
				esync(2, tracefmt.SyncUnlock, 210, lock, 0),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 100)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "distinct locks do not order",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncLock, 90, lock, 0),
				esync(1, tracefmt.SyncUnlock, 110, lock, 0),
				esync(2, tracefmt.SyncLock, 190, lock+64, 0),
				esync(2, tracefmt.SyncUnlock, 210, lock+64, 0),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 100)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "fork-join ordering",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncThreadCreate, 50, 0, 2),
				esync(2, tracefmt.SyncThreadBegin, 60, 0, 0),
				esync(2, tracefmt.SyncThreadExit, 250, 0, 0),
				esync(1, tracefmt.SyncThreadJoin, 260, 0, 2),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 40), eacc(1, 0x400110, 0x600000, true, 300)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "read shared then unordered write",
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, false, 100)},
				2: {eacc(2, 0x400200, 0x600000, false, 150)},
				3: {eacc(3, 0x400300, 0x600000, false, 200)},
				4: {eacc(4, 0x400400, 0x600000, true, 400)},
			},
		},
		{
			name: "malloc generation reuse",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncMalloc, 50, 0x800000, 64),
				esync(1, tracefmt.SyncFree, 150, 0x800000, 0),
				esync(2, tracefmt.SyncMalloc, 160, 0x800000, 64),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x800010, true, 100)},
				2: {eacc(2, 0x400200, 0x800010, true, 200)},
			},
		},
		{
			name: "many addresses one pc pair",
			accs: func() map[int32][]replay.Access {
				m := map[int32][]replay.Access{}
				for i := uint64(0); i < 64; i++ {
					m[1] = append(m[1], eacc(1, 0x400100, 0x600000+8*i, true, 100+i))
					m[2] = append(m[2], eacc(2, 0x400200, 0x600000+8*i, true, 1000+i))
				}
				return m
			}(),
		},
	}
}

func TestDetectorEquivalenceScenarios(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			checkEquivalence(t, sc.sync, sc.accs)
		})
	}
}

// tracedInput runs the pipeline's online phase plus reconstruction and
// returns the detector input it produces.
func tracedInput(t *testing.T, w workload.Workload, period uint64, seed int64) ([]tracefmt.SyncRecord, map[int32][]replay.Access) {
	t.Helper()
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: period, Seed: seed, EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := core.Analyze(w.Program, tr.Trace, core.AnalysisOptions{Mode: replay.ModeForwardBackward})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Trace.Sync, ar.Accesses
}

func TestDetectorEquivalenceWorkloads(t *testing.T) {
	for _, w := range workload.All(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			sync, accs := tracedInput(t, w, 5000, 11)
			checkEquivalence(t, sync, accs)
		})
	}
}

func TestDetectorEquivalenceTable2Bugs(t *testing.T) {
	for _, bug := range bugs.All() {
		bug := bug
		t.Run(bug.ID, func(t *testing.T) {
			built := bug.Build(1)
			sync, accs := tracedInput(t, built.Workload, 1000, 3)
			checkEquivalence(t, sync, accs)
		})
	}
}

// TestDetectorEquivalenceSeeds varies the schedule on one racy workload so
// the detectors see several distinct interleavings of the same program.
func TestDetectorEquivalenceSeeds(t *testing.T) {
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sync, accs := tracedInput(t, built.Workload, 500, seed)
			checkEquivalence(t, sync, accs)
		})
	}
}
