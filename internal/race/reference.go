package race

import (
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
	"prorace/internal/vc"
)

// ReferenceDetector is the pre-flat-table FastTrack implementation,
// preserved verbatim as the differential baseline for the slab shadow
// table: per-variable state in map[varKey]*varState with heap vector
// clocks and two provenance maps per read-shared variable. It exists for
// two jobs only — byte-identical differential tests against Detector, and
// the memscale experiment's before/after memory measurement — and is not
// on any production path.
//
// The one deliberate delta from the historical code: the shared-read scan
// runs over the vector's true length instead of clamping at TID 64, the
// same unclamping applied to Detector and DjitDetector; on traces with
// TIDs below 64 (every sanitized trace the pipeline produced to date) the
// behaviour is bit-identical.
type ReferenceDetector struct {
	opts Options

	hbState // shared sync-clock machinery (hb.go)

	vars map[varKey]*varState

	reports []Report
	seen    map[[2]uint64]bool
	// RacyAddrs mirrors Detector's feedback output.
	RacyAddrs map[uint64]bool
}

// varState is the reference per-variable state: a write epoch and an
// adaptive read representation (epoch or heap vector clock plus two
// provenance maps).
type varState struct {
	w        vc.Epoch
	wPC      uint64
	wTSC     uint64
	r        vc.Epoch
	rPC      uint64
	rTSC     uint64
	rShared  *vc.VC
	rPCs     map[int32]uint64 // per-thread read PCs when shared
	rTSCs    map[int32]uint64
	hasWrite bool
	hasRead  bool
}

// NewReferenceDetector creates the map-based baseline detector.
func NewReferenceDetector(opts Options) *ReferenceDetector {
	if opts.MaxReports == 0 {
		opts.MaxReports = 10000
	}
	return &ReferenceDetector{
		opts:      opts,
		hbState:   newHBState(opts.TrackAllocations),
		vars:      map[varKey]*varState{},
		seen:      map[[2]uint64]bool{},
		RacyAddrs: map[uint64]bool{},
	}
}

// HandleSync processes one synchronization record.
func (d *ReferenceDetector) HandleSync(rec *tracefmt.SyncRecord) {
	d.hbState.HandleSync(rec)
}

// HandleAccess processes one memory access with the historical map-based
// state representation.
func (d *ReferenceDetector) HandleAccess(a *replay.Access) {
	tid := a.TID
	c := d.clock(tid)
	key := varKey{addr: a.Addr, gen: d.genOf(a.Addr)}
	v := d.vars[key]
	if v == nil {
		v = &varState{}
		d.vars[key] = v
	}
	me := c.EpochOf(tid)

	if a.Store {
		if v.hasWrite && v.w.TID() != tid && !v.w.LEQ(c) {
			d.report(a, AccessInfo{TID: v.w.TID(), PC: v.wPC, Write: true, TSC: v.wTSC})
		}
		if v.hasRead {
			if v.rShared != nil {
				for t := int32(0); int(t) < v.rShared.Len(); t++ {
					cl := v.rShared.Get(t)
					if cl == 0 || t == tid {
						continue
					}
					if cl > c.Get(t) {
						d.report(a, AccessInfo{TID: t, PC: v.rPCs[t], Write: false, TSC: v.rTSCs[t]})
					}
				}
			} else if v.r.TID() != tid && !v.r.LEQ(c) {
				d.report(a, AccessInfo{TID: v.r.TID(), PC: v.rPC, Write: false, TSC: v.rTSC})
			}
		}
		v.hasWrite = true
		v.w = me
		v.wPC, v.wTSC = a.PC, a.TSC
		return
	}

	if v.hasWrite && v.w.TID() != tid && !v.w.LEQ(c) {
		d.report(a, AccessInfo{TID: v.w.TID(), PC: v.wPC, Write: true, TSC: v.wTSC})
	}
	if v.rShared != nil {
		v.rShared.Set(tid, me.Clock())
		v.rPCs[tid], v.rTSCs[tid] = a.PC, a.TSC
		return
	}
	if !v.hasRead || v.r.TID() == tid || v.r.LEQ(c) {
		v.hasRead = true
		v.r = me
		v.rPC, v.rTSC = a.PC, a.TSC
		return
	}
	v.rShared = vc.New()
	v.rShared.Set(v.r.TID(), v.r.Clock())
	v.rShared.Set(tid, me.Clock())
	v.rPCs = map[int32]uint64{v.r.TID(): v.rPC, tid: a.PC}
	v.rTSCs = map[int32]uint64{v.r.TID(): v.rTSC, tid: a.TSC}
}

func (d *ReferenceDetector) report(a *replay.Access, prior AccessInfo) {
	d.RacyAddrs[a.Addr] = true
	r := Report{
		Addr:   a.Addr,
		First:  prior,
		Second: AccessInfo{TID: a.TID, PC: a.PC, Write: a.Store, TSC: a.TSC},
	}
	if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
		return
	}
	d.seen[r.Key()] = true
	d.reports = append(d.reports, r)
}

// Reports returns the deduplicated race reports.
func (d *ReferenceDetector) Reports() []Report { return d.reports }

// Finish is a no-op, satisfying ReportSink.
func (d *ReferenceDetector) Finish() {}

// RacyAddrSet returns the distinct racy addresses.
func (d *ReferenceDetector) RacyAddrSet() map[uint64]bool { return d.RacyAddrs }

// Variables returns the live variable count, for bytes-per-variable
// accounting in the memscale experiment.
func (d *ReferenceDetector) Variables() int { return len(d.vars) }
