package race

import (
	"testing"

	"prorace/internal/replay"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// TestWarmDetectorAllocs pins the hot-path allocation behaviour of the
// detector: once the shadow state for an address set exists, re-processing
// the same accesses must not allocate at all. Epoch updates, same-epoch
// fast paths and vector-clock joins all work in place.
func TestWarmDetectorAllocs(t *testing.T) {
	sync, accesses := shardScenario()
	d := NewDetector(Options{TrackAllocations: true})
	feed := func() {
		for i := range sync {
			d.HandleSync(&sync[i])
		}
		for _, accs := range accesses {
			for i := range accs {
				d.HandleAccess(&accs[i])
			}
		}
	}
	feed() // populate shadow state; reports for the racy pairs are emitted here
	base := len(d.Reports())
	avg := testing.AllocsPerRun(10, feed)
	// Re-reports of already-known races are deduplicated, so a warm replay
	// is pure shadow-state churn; hold it to (almost) zero allocations.
	const budget = 2
	if avg > budget {
		t.Errorf("warm detector replay: %.1f allocs/run, budget %d", avg, budget)
	}
	if len(d.Reports()) != base {
		t.Fatalf("warm replay changed the report list: %d -> %d", base, len(d.Reports()))
	}
}

// TestStreamingChunkRecycling pins the pooled streaming path: once the
// event-chunk pool is warm, pushing a thread's events through
// StreamThread and draining them with recycling must allocate per chunk
// (channel machinery), not per event.
func TestStreamingChunkRecycling(t *testing.T) {
	sync, accesses := shardScenario()
	events := 0
	for tid, accs := range accesses {
		events += len(accs) + len(SyncByTID(sync)[tid])
	}
	run := func() {
		streams := map[int32]<-chan []Event{}
		for tid, accs := range accesses {
			ch := make(chan []Event, 2)
			streams[tid] = ch
			go StreamThread(ch, SyncByTID(sync)[tid], accs)
		}
		FeedStreamsPooled(countSink{}, streams)
	}
	run() // warm the chunk pool
	avg := testing.AllocsPerRun(10, run)
	// Per run: 2 goroutines, 2 channels, the cursor slice and maps — but
	// nothing proportional to the event count. A per-event regression on
	// this workload (130+ events) would overshoot the budget at once.
	const budget = 64
	if avg > budget {
		t.Errorf("pooled streaming of %d events: %.1f allocs/run, budget %d", events, avg, budget)
	}
}

type countSink struct{}

func (countSink) HandleSync(*tracefmt.SyncRecord) {}

func (countSink) HandleAccess(*replay.Access) {}

// TestShardedTelemetryOffAddsNoAllocs pins the disabled-telemetry contract
// on the sharded detection path: without a registry the detector holds a
// nil queue-depth histogram and nil registry handle, its feeder tallies are
// plain ints, and the instrumentation calls on the flush path are exactly
// zero allocations.
func TestShardedTelemetryOffAddsNoAllocs(t *testing.T) {
	d := NewShardedDetector(2, Options{})
	defer d.Finish()
	if d.tel != nil || d.queueDepth != nil {
		t.Fatal("sharded detector without telemetry must hold nil handles")
	}
	if avg := testing.AllocsPerRun(100, func() {
		d.queueDepth.Observe(3)
		d.publish()
	}); avg != 0 {
		t.Errorf("disabled-telemetry sharded instrumentation: %.1f allocs/run, want 0", avg)
	}
}

// TestShardedTelemetryCounts cross-checks the sharded pass's published
// series: feeder-side event counts are exact (sync broadcasts counted once,
// not per shard), per-shard events sum to nSync*shards + nAccess, and the
// read-shared inflation sum across shards equals the sequential detector's
// count for the same trace.
func TestShardedTelemetryCounts(t *testing.T) {
	sync, accesses := shardScenario()
	nAccess := 0
	for _, accs := range accesses {
		nAccess += len(accs)
	}

	seq := NewDetector(Options{TrackAllocations: true})
	Feed(seq, sync, accesses)
	seq.Finish()

	reg := telemetry.New()
	const shards = 4
	d := DetectSharded(sync, accesses, shards, Options{TrackAllocations: true, Telemetry: reg})
	_ = d
	s := reg.Snapshot()

	if got := s.Counter("prorace_detect_sync_events_total"); got != uint64(len(sync)) {
		t.Errorf("sync events = %d, want %d", got, len(sync))
	}
	if got := s.Counter("prorace_detect_access_events_total"); got != uint64(nAccess) {
		t.Errorf("access events = %d, want %d", got, nAccess)
	}
	if got := s.Counter("prorace_detect_read_share_inflations_total"); got != uint64(seq.inflations) {
		t.Errorf("sharded inflation sum = %d, sequential = %d", got, seq.inflations)
	}
	if got := s.Gauges["prorace_detect_shards"]; got != shards {
		t.Errorf("shards gauge = %d, want %d", got, shards)
	}
	var perShard uint64
	for i := 0; i < shards; i++ {
		perShard += s.Counter(telemetry.Label("prorace_detect_shard_events_total", "shard", i))
	}
	if want := uint64(len(sync)*shards + nAccess); perShard != want {
		t.Errorf("per-shard event sum = %d, want %d (sync broadcast to every shard)", perShard, want)
	}
	if got := s.Histograms["prorace_detect_queue_depth"].Count; got == 0 {
		t.Error("queue-depth histogram recorded no flushes")
	}
}
