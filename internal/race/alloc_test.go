package race

import (
	"testing"

	"prorace/internal/replay"
	"prorace/internal/tracefmt"
)

// TestWarmDetectorAllocs pins the hot-path allocation behaviour of the
// detector: once the shadow state for an address set exists, re-processing
// the same accesses must not allocate at all. Epoch updates, same-epoch
// fast paths and vector-clock joins all work in place.
func TestWarmDetectorAllocs(t *testing.T) {
	sync, accesses := shardScenario()
	d := NewDetector(Options{TrackAllocations: true})
	feed := func() {
		for i := range sync {
			d.HandleSync(&sync[i])
		}
		for _, accs := range accesses {
			for i := range accs {
				d.HandleAccess(&accs[i])
			}
		}
	}
	feed() // populate shadow state; reports for the racy pairs are emitted here
	base := len(d.Reports())
	avg := testing.AllocsPerRun(10, feed)
	// Re-reports of already-known races are deduplicated, so a warm replay
	// is pure shadow-state churn; hold it to (almost) zero allocations.
	const budget = 2
	if avg > budget {
		t.Errorf("warm detector replay: %.1f allocs/run, budget %d", avg, budget)
	}
	if len(d.Reports()) != base {
		t.Fatalf("warm replay changed the report list: %d -> %d", base, len(d.Reports()))
	}
}

// TestStreamingChunkRecycling pins the pooled streaming path: once the
// event-chunk pool is warm, pushing a thread's events through
// StreamThread and draining them with recycling must allocate per chunk
// (channel machinery), not per event.
func TestStreamingChunkRecycling(t *testing.T) {
	sync, accesses := shardScenario()
	events := 0
	for tid, accs := range accesses {
		events += len(accs) + len(SyncByTID(sync)[tid])
	}
	run := func() {
		streams := map[int32]<-chan []Event{}
		for tid, accs := range accesses {
			ch := make(chan []Event, 2)
			streams[tid] = ch
			go StreamThread(ch, SyncByTID(sync)[tid], accs)
		}
		FeedStreamsPooled(countSink{}, streams)
	}
	run() // warm the chunk pool
	avg := testing.AllocsPerRun(10, run)
	// Per run: 2 goroutines, 2 channels, the cursor slice and maps — but
	// nothing proportional to the event count. A per-event regression on
	// this workload (130+ events) would overshoot the budget at once.
	const budget = 64
	if avg > budget {
		t.Errorf("pooled streaming of %d events: %.1f allocs/run, budget %d", events, avg, budget)
	}
}

type countSink struct{}

func (countSink) HandleSync(*tracefmt.SyncRecord) {}

func (countSink) HandleAccess(*replay.Access) {}
