package race

import (
	"math/rand"
	"testing"

	"prorace/internal/replay"
)

func TestShadowTableInsertLookupGrow(t *testing.T) {
	tab := newShadowTable(0)
	if len(tab.slots) != defaultShadowCap {
		t.Fatalf("default capacity = %d, want %d", len(tab.slots), defaultShadowCap)
	}
	// Insert well past the growth threshold and verify every slot keeps its
	// identity and payload across rehashes.
	const n = 5000
	for i := uint64(0); i < n; i++ {
		s := tab.slot(0x600000+8*i, uint32(i%3))
		s.wPC = 0x400000 + i
		s.flags |= slotHasWrite
	}
	if tab.used != n {
		t.Fatalf("used = %d, want %d", tab.used, n)
	}
	for i := uint64(0); i < n; i++ {
		s := tab.slot(0x600000+8*i, uint32(i%3))
		if s.wPC != 0x400000+i || s.flags&slotHasWrite == 0 {
			t.Fatalf("slot %d lost payload across growth: pc %#x", i, s.wPC)
		}
	}
	if tab.used != n {
		t.Fatalf("lookups inserted: used = %d, want %d", tab.used, n)
	}
	// Same address, different generation = distinct variable.
	tab.slot(0x600000, 99)
	if tab.used != n+1 {
		t.Error("generation must participate in slot identity")
	}
	if tab.peak != tab.bytes() {
		t.Errorf("peak %d must track the grown table (%d)", tab.peak, tab.bytes())
	}
}

func TestShadowTableCapacityHint(t *testing.T) {
	tab := newShadowTable(100000)
	start := len(tab.slots)
	// The hinted population must fit without any growth.
	for i := uint64(0); i < 100000; i++ {
		tab.slot(0x10000+64*i, 0)
	}
	if len(tab.slots) != start {
		t.Errorf("hinted table grew: %d -> %d slots", start, len(tab.slots))
	}
}

func TestProvPoolSetGetGrowRecycle(t *testing.T) {
	p := newProvPool()
	var ref provRef
	// Rows are sparse: a high TID costs one entry, not a dense prefix.
	p.set(&ref, 4000, 0x41, 100)
	if ref == 0 {
		t.Fatal("set must allocate a row")
	}
	if pc, tsc := p.get(ref, 4000); pc != 0x41 || tsc != 100 {
		t.Fatalf("get = %#x/%d", pc, tsc)
	}
	if pc, _ := p.get(ref, 1); pc != 0 {
		t.Error("unset entry must read zero")
	}
	// In-place update for a known reader.
	p.set(&ref, 4000, 0x44, 101)
	if pc, _ := p.get(ref, 4000); pc != 0x44 {
		t.Error("re-read must update in place")
	}
	// A third distinct reader overflows the 2-entry row: the row moves to
	// the next size class, copying and retiring the old region.
	p.set(&ref, 7, 0x42, 200)
	old := ref
	p.set(&ref, 9, 0x45, 300)
	if ref == old {
		t.Fatal("growth past capacity must move the row")
	}
	for _, chk := range []struct {
		tid int32
		pc  uint64
	}{{4000, 0x44}, {7, 0x42}, {9, 0x45}} {
		if pc, _ := p.get(ref, chk.tid); pc != chk.pc {
			t.Errorf("after growth, get(%d) = %#x, want %#x", chk.tid, pc, chk.pc)
		}
	}
	// The retired 2-entry row must be recycled by the next fresh row,
	// starting empty.
	var ref2 provRef
	p.set(&ref2, 3, 0x43, 300)
	if ref2 != old {
		t.Errorf("recycled row ref = %d, want reuse of %d", ref2, old)
	}
	if pc, _ := p.get(ref2, 7); pc != 0 {
		t.Error("recycled row must start empty")
	}
	if pc, _ := p.get(ref2, 3); pc != 0x43 {
		t.Error("recycled row lost its new entry")
	}
}

func TestDetectorReadInflation(t *testing.T) {
	// Exclusive read → same-thread read keeps the epoch representation;
	// a concurrent second reader inflates to an interned vector.
	d := NewDetector(Options{})
	r1 := acc(1, 0x400100, 0x600000, false, 100)
	r1b := acc(1, 0x400101, 0x600000, false, 110)
	r2 := acc(2, 0x400200, 0x600000, false, 200)
	d.HandleAccess(&r1)
	d.HandleAccess(&r1b)
	s := d.shadow.slot(0x600000, 0)
	if s.flags&slotShared != 0 || d.inflations != 0 {
		t.Fatal("same-thread reads must stay in epoch representation")
	}
	if s.r.TID() != 1 || s.rPC != 0x400101 {
		t.Fatalf("read epoch wrong: %v pc %#x", s.r, s.rPC)
	}
	d.HandleAccess(&r2)
	s = d.shadow.slot(0x600000, 0)
	if s.flags&slotShared == 0 || d.inflations != 1 {
		t.Fatal("concurrent second reader must inflate")
	}
	// The interned vector holds both readers' clocks; provenance holds both
	// PCs (thread 1's from its LAST read).
	if d.intern.At(s.rvc, 1) == 0 || d.intern.At(s.rvc, 2) == 0 {
		t.Errorf("inflated vector missing a reader: %v", d.intern.Clocks(s.rvc))
	}
	if pc, _ := d.prov.get(s.prov, 1); pc != 0x400101 {
		t.Errorf("provenance for T1 = %#x, want its last read PC", pc)
	}
	if pc, _ := d.prov.get(s.prov, 2); pc != 0x400200 {
		t.Errorf("provenance for T2 = %#x", pc)
	}
	// A racy write must report against both recorded read sites.
	w := acc(3, 0x400300, 0x600000, true, 400)
	d.HandleAccess(&w)
	if len(d.Reports()) != 2 {
		t.Fatalf("racy write over 2-reader shared state: %d reports, want 2", len(d.Reports()))
	}
}

func TestDetectorInternSharingAcrossVariables(t *testing.T) {
	// Array-scan shape: the same two threads read many addresses at the
	// same clocks, so every variable's shared-read vector is identical and
	// must intern to ONE pooled vector with a refcount, not per-variable
	// copies.
	d := NewDetector(Options{})
	const vars = 500
	for i := uint64(0); i < vars; i++ {
		r1 := acc(1, 0x400100, 0x600000+8*i, false, 100+i)
		r2 := acc(2, 0x400200, 0x600000+8*i, false, 10000+i)
		d.HandleAccess(&r1)
		d.HandleAccess(&r2)
	}
	st := d.ShadowStats()
	if st.Variables != vars {
		t.Fatalf("variables = %d, want %d", st.Variables, vars)
	}
	if st.InternedVCs != 1 {
		t.Fatalf("distinct interned vectors = %d, want 1 (identical read vectors must dedup)", st.InternedVCs)
	}
	s := d.shadow.slot(0x600000, 0)
	if got := d.intern.Refs(s.rvc); got != vars {
		t.Errorf("shared vector refcount = %d, want %d", got, vars)
	}
	if st.InternHits != vars-1 {
		t.Errorf("intern hits = %d, want %d", st.InternHits, vars-1)
	}
}

func TestDetectorInternChurnReusesRegions(t *testing.T) {
	// One variable re-read many times by alternating threads after sync
	// ticks: each read replaces the interned vector. The retired regions
	// must recycle — live vectors stay tiny and reuses accumulate.
	d := NewDetector(Options{})
	addr := uint64(0x600000)
	r1 := acc(1, 0x400100, addr, false, 100)
	r2 := acc(2, 0x400200, addr, false, 110)
	d.HandleAccess(&r1)
	d.HandleAccess(&r2) // inflate
	for i := 0; i < 300; i++ {
		// Tick the reader's clock via a lock round-trip so each read stores
		// a new value into the shared vector.
		tid := int32(1 + i%2)
		l := syncRec(tid, 6, uint64(1000+10*i), 0x700000, 0) // SyncLock
		u := syncRec(tid, 7, uint64(1005+10*i), 0x700000, 0) // SyncUnlock
		d.HandleSync(&l)
		d.HandleSync(&u)
		r := acc(tid, 0x400300, addr, false, uint64(1006+10*i))
		d.HandleAccess(&r)
	}
	st := d.ShadowStats()
	if st.InternedVCs > 2 {
		t.Errorf("live interned vectors = %d after churn, want ≤ 2", st.InternedVCs)
	}
	if st.InternReuses == 0 {
		t.Error("churn produced no region reuses — free lists not engaged")
	}
}

// TestWarmSharedReadAllocs extends the warm-replay allocation guard to the
// read-shared path: once a variable's read state is an interned vector and
// both states of the two-reader alternation exist in the pool, further
// shared reads are WithSet/Release churn that must not allocate.
func TestWarmSharedReadAllocs(t *testing.T) {
	d := NewDetector(Options{})
	addr := uint64(0x600000)
	r1 := acc(1, 0x400100, addr, false, 100)
	r2 := acc(2, 0x400200, addr, false, 110)
	d.HandleAccess(&r1)
	d.HandleAccess(&r2)
	step := func() {
		r := acc(2, 0x400200, addr, false, 120)
		d.HandleAccess(&r)
	}
	step()
	if avg := testing.AllocsPerRun(100, step); avg > 0 {
		t.Errorf("warm shared-read path: %.1f allocs/run, want 0", avg)
	}
}

// TestFlatMatchesReferenceRandomized is the representation-differential
// test: random traces with reads, writes, locks and mallocs through both
// the flat-table detector and the frozen map-based reference must produce
// identical ordered report lists and racy-address sets.
func TestFlatMatchesReferenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{TrackAllocations: true}
		flat := NewDetector(opts)
		ref := NewReferenceDetector(opts)

		nThreads := 2 + rng.Intn(6)
		addrs := make([]uint64, 1+rng.Intn(20))
		for i := range addrs {
			addrs[i] = 0x600000 + uint64(rng.Intn(64))*8
		}
		tsc := uint64(1)
		for step := 0; step < 2000; step++ {
			tid := int32(1 + rng.Intn(nThreads))
			tsc += uint64(1 + rng.Intn(3))
			switch rng.Intn(10) {
			case 0: // lock
				rec := syncRec(tid, 6, tsc, 0x700000+uint64(rng.Intn(2))*64, 0)
				flat.HandleSync(&rec)
				ref.HandleSync(&rec)
			case 1: // unlock
				rec := syncRec(tid, 7, tsc, 0x700000+uint64(rng.Intn(2))*64, 0)
				flat.HandleSync(&rec)
				ref.HandleSync(&rec)
			case 2: // malloc over a known address range (generation churn)
				rec := syncRec(tid, 1, tsc, addrs[rng.Intn(len(addrs))], 8)
				flat.HandleSync(&rec)
				ref.HandleSync(&rec)
			default:
				a := acc(tid, 0x400000+uint64(rng.Intn(30))*4, addrs[rng.Intn(len(addrs))], rng.Intn(3) == 0, tsc)
				b := a
				flat.HandleAccess(&a)
				ref.HandleAccess(&b)
			}
		}
		if len(flat.Reports()) != len(ref.Reports()) {
			t.Fatalf("seed %d: flat %d reports, reference %d", seed, len(flat.Reports()), len(ref.Reports()))
		}
		for i := range flat.Reports() {
			if flat.Reports()[i] != ref.Reports()[i] {
				t.Fatalf("seed %d report %d:\n  flat: %+v\n  ref:  %+v", seed, i, flat.Reports()[i], ref.Reports()[i])
			}
		}
		if len(flat.RacyAddrs) != len(ref.RacyAddrs) {
			t.Fatalf("seed %d: racy-addr sets differ: %d vs %d", seed, len(flat.RacyAddrs), len(ref.RacyAddrs))
		}
		for a := range ref.RacyAddrs {
			if !flat.RacyAddrs[a] {
				t.Fatalf("seed %d: flat missing racy addr %#x", seed, a)
			}
		}
	}
}

// TestShadowStatsAccounting sanity-checks the byte accounting the memscale
// experiment and CI budget assert against.
func TestShadowStatsAccounting(t *testing.T) {
	d := NewDetector(Options{})
	for i := uint64(0); i < 100; i++ {
		w := acc(1, 0x400100, 0x600000+8*i, true, 100+i)
		d.HandleAccess(&w)
	}
	st := d.ShadowStats()
	if st.Variables != 100 {
		t.Fatalf("variables = %d", st.Variables)
	}
	if st.TableBytes != uint64(defaultShadowCap)*shadowSlotSize {
		t.Errorf("table bytes = %d, want %d", st.TableBytes, defaultShadowCap*shadowSlotSize)
	}
	if st.Bytes() < st.TableBytes || st.PeakBytes() < st.Bytes() {
		t.Error("byte totals inconsistent")
	}
	if st.InternedVCs != 0 || st.InternHits+st.InternMisses != 0 {
		t.Error("write-only trace must not touch the interner")
	}
}

// BenchmarkFlatVsReferenceDetect compares the two representations on an
// array-scan workload with shared reads — the shape the flat table and
// interner are built for.
func BenchmarkFlatVsReferenceDetect(b *testing.B) {
	const vars = 10000
	build := func() []replay.Access {
		accs := make([]replay.Access, 0, 3*vars)
		for i := uint64(0); i < vars; i++ {
			accs = append(accs,
				acc(1, 0x400100, 0x600000+8*i, false, 100+i),
				acc(2, 0x400200, 0x600000+8*i, false, 100000+i),
				acc(3, 0x400300, 0x600000+8*i, true, 200000+i))
		}
		return accs
	}
	run := func(b *testing.B, sink ReportSink) {
		accs := build()
		for i := range accs {
			sink.HandleAccess(&accs[i])
		}
		sink.Finish()
	}
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, NewDetector(Options{MaxReports: 10}))
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, NewReferenceDetector(Options{MaxReports: 10}))
		}
	})
}
