package race

import (
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
	"prorace/internal/vc"
)

// DjitDetector implements DJIT+ (Pozniansky & Schuster), the full
// vector-clock race detector FastTrack was designed to improve upon: every
// variable keeps a complete read vector clock and write vector clock, so
// each access costs O(threads) where FastTrack's adaptive epochs cost O(1)
// in the common case. It detects exactly the same races; the benchmark
// suite uses it to show FastTrack's speedup on the same extended traces.
type DjitDetector struct {
	opts Options

	hbState // shared sync-clock machinery (hb.go)

	vars map[varKey]*djitVar

	reports []Report
	seen    map[[2]uint64]bool
	// RacyAddrs mirrors Detector's feedback output.
	RacyAddrs map[uint64]bool
}

// djitVar is DJIT+'s per-variable state: full vector clocks for reads and
// writes, plus the last PC per thread for reporting.
type djitVar struct {
	r, w       *vc.VC
	rPCs, wPCs map[int32]uint64
}

// NewDjitDetector creates a DJIT+ detector.
func NewDjitDetector(opts Options) *DjitDetector {
	if opts.MaxReports == 0 {
		opts.MaxReports = 10000
	}
	return &DjitDetector{
		opts:      opts,
		hbState:   newHBState(opts.TrackAllocations),
		vars:      map[varKey]*djitVar{},
		seen:      map[[2]uint64]bool{},
		RacyAddrs: map[uint64]bool{},
	}
}

// DetectDjit runs DJIT+ over a trace, through the same event merge as
// Detect.
func DetectDjit(sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access, opts Options) *DjitDetector {
	d := NewDjitDetector(opts)
	Feed(d, sync, accesses)
	return d
}

// Reports returns the deduplicated race reports.
func (d *DjitDetector) Reports() []Report { return d.reports }

// Finish is a no-op, satisfying ReportSink.
func (d *DjitDetector) Finish() {}

// RacyAddrSet returns the distinct racy addresses, for the §5.1 feedback.
func (d *DjitDetector) RacyAddrSet() map[uint64]bool { return d.RacyAddrs }

// HandleAccess processes one memory access: full vector-clock comparison
// on every access, DJIT+ style.
func (d *DjitDetector) HandleAccess(a *replay.Access) {
	tid := a.TID
	c := d.clock(tid)
	key := varKey{addr: a.Addr, gen: d.genOf(a.Addr)}
	v := d.vars[key]
	if v == nil {
		v = &djitVar{r: vc.New(), w: vc.New(), rPCs: map[int32]uint64{}, wPCs: map[int32]uint64{}}
		d.vars[key] = v
	}
	me := c.Get(tid)

	// Conflicts with prior writes (any access) and prior reads (writes).
	d.checkAgainst(a, v.w, v.wPCs, true, c)
	if a.Store {
		d.checkAgainst(a, v.r, v.rPCs, false, c)
		v.w.Set(tid, me)
		v.wPCs[tid] = a.PC
	} else {
		v.r.Set(tid, me)
		v.rPCs[tid] = a.PC
	}
}

// checkAgainst reports a race for every thread whose entry in the
// variable's clock is not covered by the current thread's clock. The scan
// covers the vector's true length (it used to clamp at TID 64, silently
// skipping readers beyond — the same unclamping is applied to every
// detector so they stay equivalent on wide traces).
func (d *DjitDetector) checkAgainst(a *replay.Access, varVC *vc.VC, pcs map[int32]uint64, priorIsWrite bool, c *vc.VC) {
	for t := int32(0); int(t) < varVC.Len(); t++ {
		cl := varVC.Get(t)
		if cl == 0 || t == a.TID {
			continue
		}
		if cl > c.Get(t) {
			d.report(a, AccessInfo{TID: t, PC: pcs[t], Write: priorIsWrite})
		}
	}
}

func (d *DjitDetector) report(a *replay.Access, prior AccessInfo) {
	d.RacyAddrs[a.Addr] = true
	r := Report{
		Addr:   a.Addr,
		First:  prior,
		Second: AccessInfo{TID: a.TID, PC: a.PC, Write: a.Store, TSC: a.TSC},
	}
	if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
		return
	}
	d.seen[r.Key()] = true
	d.reports = append(d.reports, r)
}
