package race

import (
	"prorace/internal/tracefmt"
	"prorace/internal/vc"
)

// hbState is the happens-before bookkeeping every detector in this package
// shares: per-thread vector clocks, the clocks of synchronization objects
// (locks, condition variables, barriers), thread create/exit snapshots for
// the fork/join edges, and the malloc/free generation map that keeps two
// objects reusing one address apart (§4.3). Detector, DjitDetector and
// PairOracle embed it so the sync semantics are defined exactly once —
// a divergence here would silently break their equivalence.
type hbState struct {
	trackAlloc bool

	threads map[int32]*vc.VC
	locks   map[uint64]*vc.VC
	conds   map[uint64]*vc.VC
	bars    map[uint64]*vc.VC
	exited  map[int32]*vc.VC
	created map[int32]*vc.VC // child tid -> parent clock at create

	// allocation generation per 16-byte granule
	allocGen map[uint64]uint32
}

func newHBState(trackAllocations bool) hbState {
	return hbState{
		trackAlloc: trackAllocations,
		threads:    map[int32]*vc.VC{},
		locks:      map[uint64]*vc.VC{},
		conds:      map[uint64]*vc.VC{},
		bars:       map[uint64]*vc.VC{},
		exited:     map[int32]*vc.VC{},
		created:    map[int32]*vc.VC{},
		allocGen:   map[uint64]uint32{},
	}
}

const granule = 16

func (s *hbState) clock(tid int32) *vc.VC {
	c := s.threads[tid]
	if c == nil {
		c = vc.New()
		c.Set(tid, 1)
		s.threads[tid] = c
	}
	return c
}

// genOf returns the allocation generation covering addr.
func (s *hbState) genOf(addr uint64) uint32 {
	if !s.trackAlloc {
		return 0
	}
	return s.allocGen[addr&^uint64(granule-1)]
}

// HandleSync processes one synchronization record, updating the thread and
// object clocks with the paper's §4.3 happens-before edges: lock release →
// acquire, condition signal → wake, barrier all-to-all, thread create →
// begin, and exit → join.
func (s *hbState) HandleSync(rec *tracefmt.SyncRecord) {
	tid := rec.TID
	c := s.clock(tid)
	switch rec.Kind {
	case tracefmt.SyncLock:
		if l := s.locks[rec.Addr]; l != nil {
			c.Join(l)
		}
	case tracefmt.SyncUnlock:
		l := s.locks[rec.Addr]
		if l == nil {
			l = vc.New()
			s.locks[rec.Addr] = l
		}
		l.Assign(c)
		c.Tick(tid)
	case tracefmt.SyncCondWait:
		// The waiter releases its mutex at the wait (the paired wake edge
		// arrives as SyncCondWake).
		l := s.locks[rec.Aux]
		if l == nil {
			l = vc.New()
			s.locks[rec.Aux] = l
		}
		l.Assign(c)
		c.Tick(tid)
	case tracefmt.SyncCondSignal, tracefmt.SyncCondBroadcast:
		sig := s.conds[rec.Addr]
		if sig == nil {
			sig = vc.New()
			s.conds[rec.Addr] = sig
		}
		sig.Join(c)
		c.Tick(tid)
	case tracefmt.SyncCondWake:
		if sig := s.conds[rec.Addr]; sig != nil {
			c.Join(sig)
		}
		if l := s.locks[rec.Aux]; l != nil {
			c.Join(l) // mutex reacquired on wake
		}
	case tracefmt.SyncBarrier:
		b := s.bars[rec.Addr]
		if b == nil {
			b = vc.New()
			s.bars[rec.Addr] = b
		}
		b.Join(c)
		c.Tick(tid)
	case tracefmt.SyncBarrierWake:
		if b := s.bars[rec.Addr]; b != nil {
			c.Join(b)
		}
	case tracefmt.SyncThreadCreate:
		child := int32(rec.Addr)
		s.created[child] = c.Copy()
		c.Tick(tid)
	case tracefmt.SyncThreadBegin:
		if parent := s.created[tid]; parent != nil {
			c.Join(parent)
		}
	case tracefmt.SyncThreadExit:
		s.exited[tid] = c.Copy()
	case tracefmt.SyncThreadJoin:
		if ev := s.exited[int32(rec.Addr)]; ev != nil {
			c.Join(ev)
		}
	case tracefmt.SyncMalloc:
		if s.trackAlloc {
			end := rec.Addr + rec.Aux
			for a := rec.Addr &^ uint64(granule-1); a < end; a += granule {
				s.allocGen[a]++
			}
		}
	case tracefmt.SyncFree:
		// Generation bumps on malloc; free needs no action.
	}
}
