package race

import (
	"testing"

	"prorace/internal/replay"
	"prorace/internal/tracefmt"
)

func acc(tid int32, pc, addr uint64, store bool, tsc uint64) replay.Access {
	return replay.Access{TID: tid, PC: pc, Addr: addr, Store: store, TSC: tsc, Step: -1}
}

func syncRec(tid int32, kind tracefmt.SyncKind, tsc, addr, aux uint64) tracefmt.SyncRecord {
	return tracefmt.SyncRecord{TID: tid, Kind: kind, TSC: tsc, Addr: addr, Aux: aux}
}

func TestUnsynchronizedWriteWriteRace(t *testing.T) {
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 100)},
		2: {acc(2, 0x400200, 0x600000, true, 200)},
	}
	d := Detect(nil, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 1 {
		t.Fatalf("reports = %v", d.Reports())
	}
	r := d.Reports()[0]
	if r.Addr != 0x600000 || !r.First.Write || !r.Second.Write {
		t.Errorf("report = %+v", r)
	}
	if !d.RacyAddrs[0x600000] {
		t.Error("racy address not collected")
	}
}

func TestWriteReadAndReadWriteRaces(t *testing.T) {
	// T1 writes, T2 reads (unordered) — then T3 writes after T2's read.
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 100)},
		2: {acc(2, 0x400200, 0x600000, false, 200)},
		3: {acc(3, 0x400300, 0x600000, true, 300)},
	}
	d := Detect(nil, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) < 2 {
		t.Fatalf("expected write-read and read-write races, got %v", d.Reports())
	}
}

func TestLockOrderingSuppressesRace(t *testing.T) {
	lock := uint64(0x700000)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncLock, 90, lock, 0),
		syncRec(1, tracefmt.SyncUnlock, 110, lock, 0),
		syncRec(2, tracefmt.SyncLock, 190, lock, 0),
		syncRec(2, tracefmt.SyncUnlock, 210, lock, 0),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 100)},
		2: {acc(2, 0x400200, 0x600000, true, 200)},
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("lock-ordered accesses reported as race: %v", d.Reports())
	}
}

func TestDistinctLocksDoNotOrder(t *testing.T) {
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncLock, 90, 0x700000, 0),
		syncRec(1, tracefmt.SyncUnlock, 110, 0x700000, 0),
		syncRec(2, tracefmt.SyncLock, 190, 0x700100, 0), // different lock
		syncRec(2, tracefmt.SyncUnlock, 210, 0x700100, 0),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 100)},
		2: {acc(2, 0x400200, 0x600000, true, 200)},
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 1 {
		t.Fatalf("different locks must not order accesses: %v", d.Reports())
	}
}

func TestForkJoinOrdering(t *testing.T) {
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncThreadCreate, 50, 2, 0), // T1 creates T2
		syncRec(2, tracefmt.SyncThreadBegin, 60, 0, 0),
		syncRec(2, tracefmt.SyncThreadExit, 210, 0, 0),
		syncRec(1, tracefmt.SyncThreadJoin, 250, 2, 0),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 40), // before create
			acc(1, 0x400110, 0x600000, true, 300)}, // after join
		2: {acc(2, 0x400200, 0x600000, true, 200)},
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("fork/join ordered accesses reported: %v", d.Reports())
	}
	// Without the join, the post-"join" write races with the child's.
	d2 := Detect(sync[:3], accesses, Options{TrackAllocations: true})
	if len(d2.Reports()) != 1 {
		t.Fatalf("missing join must yield a race: %v", d2.Reports())
	}
}

func TestCondSignalWakeOrdering(t *testing.T) {
	cv, mtx := uint64(0x700200), uint64(0x700000)
	sync := []tracefmt.SyncRecord{
		// T2 takes the lock, waits (releasing it).
		syncRec(2, tracefmt.SyncLock, 50, mtx, 0),
		syncRec(2, tracefmt.SyncCondWait, 60, cv, mtx),
		// T1 writes under the lock, signals, unlocks.
		syncRec(1, tracefmt.SyncLock, 80, mtx, 0),
		syncRec(1, tracefmt.SyncCondSignal, 110, cv, 0),
		syncRec(1, tracefmt.SyncUnlock, 120, mtx, 0),
		// T2 wakes with the mutex and reads.
		syncRec(2, tracefmt.SyncCondWake, 130, cv, mtx),
		syncRec(2, tracefmt.SyncUnlock, 160, mtx, 0),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, true, 100)},  // write before signal
		2: {acc(2, 0x400200, 0x600000, false, 150)}, // read after wake
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("signal→wake ordered accesses reported: %v", d.Reports())
	}
	// Remove the wake edge: the pair becomes a race.
	var noWake []tracefmt.SyncRecord
	for _, r := range sync {
		if r.Kind != tracefmt.SyncCondWake {
			noWake = append(noWake, r)
		}
	}
	d2 := Detect(noWake, accesses, Options{TrackAllocations: true})
	if len(d2.Reports()) != 1 {
		t.Fatalf("without the wake edge a race must appear: %v", d2.Reports())
	}
}

func TestBarrierOrdering(t *testing.T) {
	bar := uint64(0x700300)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncBarrier, 100, bar, 2),
		syncRec(2, tracefmt.SyncBarrier, 200, bar, 2), // releaser
		syncRec(1, tracefmt.SyncBarrierWake, 200, bar, 0),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, 0x600000, false, 250)}, // read after barrier
		2: {acc(2, 0x400200, 0x600000, true, 90)},   // write before barrier
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("barrier-ordered accesses reported: %v", d.Reports())
	}
}

func TestAddressReuseFalsePositiveAvoided(t *testing.T) {
	// T1 writes object A at 0x10000000 and frees it; T2 mallocs an object
	// at the same address and writes — no race between different objects.
	addr := uint64(0x10000000)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncMalloc, 10, addr, 64),
		syncRec(1, tracefmt.SyncFree, 120, addr, 0),
		syncRec(2, tracefmt.SyncMalloc, 150, addr, 64),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, addr, true, 100)},
		2: {acc(2, 0x400200, addr, true, 200)},
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("address reuse across malloc generations reported: %v", d.Reports())
	}
	// Ablation: without allocation tracking the same trace is a false
	// positive — the §4.3 scenario.
	d2 := Detect(sync, accesses, Options{TrackAllocations: false})
	if len(d2.Reports()) != 1 {
		t.Fatalf("without tracking, the reuse must look like a race: %v", d2.Reports())
	}
}

func TestSameGenerationHeapRaceStillDetected(t *testing.T) {
	addr := uint64(0x10000000)
	sync := []tracefmt.SyncRecord{
		syncRec(1, tracefmt.SyncMalloc, 10, addr, 64),
	}
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400100, addr+8, true, 100)},
		2: {acc(2, 0x400200, addr+8, true, 200)},
	}
	d := Detect(sync, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 1 {
		t.Fatalf("same-object race missed: %v", d.Reports())
	}
}

func TestReadSharedNoFalseRaces(t *testing.T) {
	// Many readers, no writer: no race regardless of ordering.
	accesses := map[int32][]replay.Access{}
	for tid := int32(1); tid <= 6; tid++ {
		accesses[tid] = []replay.Access{acc(tid, 0x400100+uint64(tid), 0x600000, false, uint64(tid*10))}
	}
	d := Detect(nil, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("read-only sharing reported: %v", d.Reports())
	}
}

func TestReadSharedThenUnorderedWriteRaces(t *testing.T) {
	accesses := map[int32][]replay.Access{
		1: {acc(1, 0x400101, 0x600000, false, 10)},
		2: {acc(2, 0x400102, 0x600000, false, 20)},
		3: {acc(3, 0x400103, 0x600000, true, 30)},
	}
	d := Detect(nil, accesses, Options{TrackAllocations: true})
	// The write races with both reads.
	if len(d.Reports()) != 2 {
		t.Fatalf("expected 2 read-write races, got %v", d.Reports())
	}
}

func TestSameThreadNeverRaces(t *testing.T) {
	accesses := map[int32][]replay.Access{
		1: {
			acc(1, 0x400100, 0x600000, true, 10),
			acc(1, 0x400108, 0x600000, false, 20),
			acc(1, 0x400110, 0x600000, true, 30),
		},
	}
	d := Detect(nil, accesses, Options{TrackAllocations: true})
	if len(d.Reports()) != 0 {
		t.Fatalf("single-thread accesses reported: %v", d.Reports())
	}
}

func TestDeduplicationByPCPair(t *testing.T) {
	// The same racy PC pair occurring many times yields one report.
	var a1, a2 []replay.Access
	for i := 0; i < 50; i++ {
		a1 = append(a1, acc(1, 0x400100, 0x600000+uint64(i)*8, true, uint64(100+i)))
		a2 = append(a2, acc(2, 0x400200, 0x600000+uint64(i)*8, true, uint64(200+i)))
	}
	d := Detect(nil, map[int32][]replay.Access{1: a1, 2: a2}, Options{TrackAllocations: true})
	if len(d.Reports()) != 1 {
		t.Fatalf("dedup failed: %d reports", len(d.Reports()))
	}
	if len(d.RacyAddrs) != 50 {
		t.Errorf("racy addresses = %d, want 50", len(d.RacyAddrs))
	}
}

func TestReportString(t *testing.T) {
	r := Report{Addr: 0x600000,
		First:  AccessInfo{TID: 1, PC: 0x400100, Write: true},
		Second: AccessInfo{TID: 2, PC: 0x400200, Write: false}}
	s := r.String()
	if s == "" || r.Key() != [2]uint64{0x400100, 0x400200} {
		t.Errorf("report render: %q key %v", s, r.Key())
	}
	r2 := Report{First: AccessInfo{PC: 9}, Second: AccessInfo{PC: 3}}
	if r2.Key() != [2]uint64{3, 9} {
		t.Error("key must be order-independent")
	}
}

func TestMaxReportsBound(t *testing.T) {
	var a1, a2 []replay.Access
	for i := 0; i < 30; i++ {
		// distinct PC pairs
		a1 = append(a1, acc(1, 0x400100+uint64(i)*32, 0x600000+uint64(i)*8, true, uint64(100+i)))
		a2 = append(a2, acc(2, 0x410000+uint64(i)*32, 0x600000+uint64(i)*8, true, uint64(200+i)))
	}
	d := Detect(nil, map[int32][]replay.Access{1: a1, 2: a2}, Options{TrackAllocations: true, MaxReports: 5})
	if len(d.Reports()) != 5 {
		t.Fatalf("max reports not enforced: %d", len(d.Reports()))
	}
}
