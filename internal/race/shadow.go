package race

import (
	"math/bits"

	"prorace/internal/vc"
)

// This file is the detector's shadow memory: a flat, slab-allocated
// open-addressing table holding every variable's FastTrack state inline.
//
// The previous representation — map[varKey]*varState with two
// map[int32]uint64 provenance tables materialising per read-shared
// variable — pays a pointer dereference plus hash-map overhead per access
// and roughly 300+ heap bytes per variable before sharing even starts; at
// millions of variables the detector is bound by allocator pressure and
// cache misses, not by the O(1) epoch comparisons. The flat table stores
// the complete per-variable state in one 72-byte slot of a single slice:
// a probe lands on the slot and every field the access check needs is on
// the same cache line or its neighbour. Shared-read vector clocks live in
// the deduplicating vc.Interner (identical vectors across variables share
// one slab region), and shared-read provenance (per-thread last PC/TSC)
// lives in the provPool slab — both addressed by 4-byte handles, so the
// slot stays flat and table growth is a plain memmove of inline values.
//
// The table never deletes: variables accumulate for the detector's
// lifetime exactly as the map did, so reports are unaffected by the
// representation. Growth doubles the slot array at 80% load and reinserts;
// interner/provenance handles move with their slots without refcount
// traffic (the number of referencing slots is unchanged).

// slotFlags packs the varState booleans plus slot occupancy.
type slotFlags uint8

const (
	slotUsed slotFlags = 1 << iota
	slotHasWrite
	slotHasRead
	slotShared // read state inflated: rvc/prov valid, r/rPC/rTSC dormant
)

// shadowSlot is one variable's complete FastTrack state, stored inline.
type shadowSlot struct {
	addr  uint64
	w     vc.Epoch // last-write epoch
	wPC   uint64
	wTSC  uint64
	r     vc.Epoch // last-read epoch (exclusive representation)
	rPC   uint64
	rTSC  uint64
	gen   uint32  // malloc/free generation (varKey.gen)
	rvc   vc.Ref  // interned shared-read vector clock
	prov  provRef // shared-read provenance row
	flags slotFlags
}

// shadowSlotSize is the accounting size of one slot (72 bytes: 7×8 inline
// words + gen/rvc/prov/flags padded to the 8-byte alignment of addr).
const shadowSlotSize = 72

// defaultShadowCap is the initial slot count without a capacity hint.
const defaultShadowCap = 1 << 10

// shadowTable is the open-addressing table. Capacity is a power of two;
// linear probing; no deletion.
type shadowTable struct {
	slots []shadowSlot
	shift uint // 64 - log2(len(slots)), for Fibonacci slot hashing
	used  int
	peak  uint64 // high-water table bytes (slot array only)
}

// newShadowTable sizes the initial slot array: capacityHint names the
// expected live variable count (rounded up so the hint fits under the
// load factor), 0 the small default.
func newShadowTable(capacityHint int) shadowTable {
	n := defaultShadowCap
	if capacityHint > 0 {
		// Hint is variables; keep load ≤ 0.8 at the hinted population.
		want := capacityHint + capacityHint/4
		n = 1 << bits.Len(uint(want-1))
		if n < defaultShadowCap {
			n = defaultShadowCap
		}
	}
	t := shadowTable{
		slots: make([]shadowSlot, n),
		shift: uint(64 - bits.Len(uint(n-1))),
	}
	t.peak = t.bytes()
	return t
}

// slotHash mixes address and allocation generation; Fibonacci hashing
// spreads the regular strides of array workloads across the table.
func slotHash(addr uint64, gen uint32) uint64 {
	h := addr ^ (uint64(gen) * 0x9E3779B97F4A7C15)
	return h * 0x9E3779B97F4A7C15
}

// slot returns the variable's state slot, inserting an empty one on first
// access. The pointer is valid until the next slot call (growth may move
// the array).
func (t *shadowTable) slot(addr uint64, gen uint32) *shadowSlot {
	// Grow at 80% load: Fibonacci hashing keeps linear-probe runs short
	// enough that the memory saved beats the extra probe or two, and the
	// hint sizing above targets the same bound.
	if t.used >= len(t.slots)*4/5 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := slotHash(addr, gen) >> t.shift
	for {
		s := &t.slots[i&mask]
		if s.flags == 0 {
			s.addr, s.gen = addr, gen
			s.flags = slotUsed
			t.used++
			return s
		}
		if s.addr == addr && s.gen == gen {
			return s
		}
		i++
	}
}

func (t *shadowTable) grow() {
	old := t.slots
	t.slots = make([]shadowSlot, len(old)*2)
	t.shift = uint(64 - bits.Len(uint(len(t.slots)-1)))
	mask := uint64(len(t.slots) - 1)
	for oi := range old {
		s := &old[oi]
		if s.flags == 0 {
			continue
		}
		i := slotHash(s.addr, s.gen) >> t.shift
		for {
			ns := &t.slots[i&mask]
			if ns.flags == 0 {
				*ns = *s
				break
			}
			i++
		}
	}
	if b := t.bytes(); b > t.peak {
		t.peak = b
	}
}

func (t *shadowTable) bytes() uint64 { return uint64(len(t.slots)) * shadowSlotSize }

// provRef addresses one provenance row in a provPool; 0 is nil.
type provRef uint32

// provEntry is one thread's last shared-read site on one variable. Rows
// are sparse — entries carry their TID — because shared variables have few
// readers but those readers may have high TIDs: a dense-by-TID layout
// would cost pow2(maxTID) entries per variable on wide-thread workloads
// where sparse costs one entry per actual reader.
type provEntry struct {
	pc, tsc uint64
	tid     int32
}

// provRow is the header of one sparse provenance row.
type provRow struct {
	off  uint32
	n    uint32  // live entry count
	cap  uint32  // region capacity (power of two)
	next provRef // free-list chain when retired
}

// provSlabEntries is the slab allocation unit: 32Ki entries = 768KiB.
const provSlabEntries = 1 << 15

// provEntrySize is the accounting size of one entry (two words + tid,
// padded to 8-byte alignment).
const provEntrySize = 24

// provPool slab-allocates provenance rows for read-shared variables: a
// row holds one (tid, PC, TSC) entry per thread that has read the variable
// since it went shared, updated in place on re-reads. Rows are unique per
// variable (unlike the interned clock vectors, provenance rarely repeats
// across variables), but slab storage plus power-of-two size-class
// recycling removes the two Go maps the old varState allocated per shared
// variable. Single-owner, like the detector's interner.
type provPool struct {
	rows  []provRow // rows[0] is a sentinel so provRef 0 stays nil
	slabs [][]provEntry
	free  [33]provRef // retired rows by log2(cap)
}

func newProvPool() provPool {
	return provPool{rows: make([]provRow, 1, 16)}
}

// newRow allocates an empty row with space for capHint entries.
func (p *provPool) newRow(capHint uint32) provRef {
	capE, class := sizeClass(capHint)
	if fr := p.free[class]; fr != 0 {
		p.free[class] = p.rows[fr].next
		r := &p.rows[fr]
		r.n, r.next = 0, 0
		return fr
	}
	off := p.alloc(capE)
	p.rows = append(p.rows, provRow{off: off, cap: capE})
	return provRef(len(p.rows) - 1)
}

// alloc carves capE entries from the tail slab and returns a packed
// (slab, offset) location.
func (p *provPool) alloc(capE uint32) uint32 {
	if len(p.slabs) == 0 {
		p.slabs = append(p.slabs, make([]provEntry, 0, provSlabEntries))
	}
	cur := len(p.slabs) - 1
	tail := p.slabs[cur]
	need := int(capE)
	if need > provSlabEntries {
		p.slabs = append(p.slabs, make([]provEntry, capE))
		return packRowLoc(len(p.slabs)-1, 0)
	}
	if len(tail)+need > cap(tail) {
		p.slabs = append(p.slabs, make([]provEntry, 0, provSlabEntries))
		cur++
		tail = p.slabs[cur]
	}
	off := len(tail)
	p.slabs[cur] = tail[:off+need]
	return packRowLoc(cur, off)
}

// Row locations pack (slab, offset) into 32 bits: 16-bit slab index and
// 16-bit entry offset (slabs hold 2^15 entries, so offsets fit).
func packRowLoc(slab, off int) uint32 { return uint32(slab)<<16 | uint32(off) }
func rowSlab(loc uint32) int          { return int(loc >> 16) }
func rowOff(loc uint32) uint32        { return loc & 0xffff }

// set records thread tid's read site in the row: an existing entry for
// tid is updated in place, a new reader appends (growing — and possibly
// replacing — the row when full; ref is updated in place). The linear
// scan is over the variable's actual readers, which FastTrack's shared
// case keeps small.
func (p *provPool) set(ref *provRef, tid int32, pc, tsc uint64) {
	if *ref == 0 {
		*ref = p.newRow(2)
	}
	r := &p.rows[*ref]
	region := p.slabs[rowSlab(r.off)][rowOff(r.off) : rowOff(r.off)+r.n]
	for i := range region {
		if region[i].tid == tid {
			region[i].pc, region[i].tsc = pc, tsc
			return
		}
	}
	if r.n == r.cap {
		// Grow: allocate the next class, copy, retire the old row.
		old := *ref
		or := p.rows[old]
		nref := p.newRow(or.cap * 2)
		r = &p.rows[nref]
		newRegion := p.slabs[rowSlab(r.off)][rowOff(r.off) : rowOff(r.off)+or.n]
		copy(newRegion, region)
		r.n = or.n
		p.release(old)
		*ref = nref
	}
	p.slabs[rowSlab(r.off)][rowOff(r.off)+r.n] = provEntry{pc: pc, tsc: tsc, tid: tid}
	r.n++
}

// get returns thread tid's recorded read site (zero when absent).
func (p *provPool) get(ref provRef, tid int32) (pc, tsc uint64) {
	if ref == 0 {
		return 0, 0
	}
	r := &p.rows[ref]
	region := p.slabs[rowSlab(r.off)][rowOff(r.off) : rowOff(r.off)+r.n]
	for i := range region {
		if region[i].tid == tid {
			return region[i].pc, region[i].tsc
		}
	}
	return 0, 0
}

// release retires a row into its size-class free list.
func (p *provPool) release(ref provRef) {
	r := &p.rows[ref]
	_, class := sizeClass(r.cap)
	r.next = p.free[class]
	p.free[class] = ref
}

// bytes is the pool's resident footprint: slab capacity plus headers.
func (p *provPool) bytes() uint64 {
	var slabBytes uint64
	for _, s := range p.slabs {
		slabBytes += uint64(cap(s)) * provEntrySize
	}
	const rowSize = 16 // provRow: 4×4
	return slabBytes + uint64(cap(p.rows))*rowSize
}

// sizeClass returns the power-of-two capacity covering n and its log2
// (n = 0 shares class 0 with n = 1).
func sizeClass(n uint32) (capacity uint32, class int) {
	capacity = 1
	for capacity < n {
		capacity <<= 1
		class++
	}
	return capacity, class
}
