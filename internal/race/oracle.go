package race

import (
	"sort"

	"prorace/internal/replay"
	"prorace/internal/vc"
)

// PairOracle is an exact, pair-complete happens-before detector used as the
// ground truth for the differential oracle (internal/oracle). FastTrack's
// epoch compression guarantees at least one report per racy *variable*
// (PLDI 2009, Theorem 2) but deliberately forgets access history, so which
// PC *pairs* it reports depends on the event interleaving — unacceptable
// for an oracle that must certify "every pipeline report is a true race".
//
// PairOracle instead keeps, per variable and per thread, the latest clock
// component at which each distinct PC accessed the variable. Per-thread
// clocks are monotone, so the stored clock for (thread u, pc p) dominates
// every earlier access by u at p: if any access instance at p races with a
// later access, the stored entry is itself unordered with it, and the pair
// (p, current PC) is reported no matter how the two were interleaved with
// the rest of the stream. Conversely a stored entry that compares unordered
// corresponds to a concrete earlier access instance, so every reported pair
// is a true race. There is no report cap and no per-variable compression:
// the reported pair set is exactly the racy-PC-pair set of the execution.
//
// The cost is O(threads × PCs-per-variable) per access — fine for the
// generated oracle programs, not for production traces; use Detector there.
type PairOracle struct {
	hbState // shared sync-clock machinery (hb.go)

	vars map[varKey]*oracleVar

	reports []Report
	seen    map[[2]uint64]bool
	racy    map[uint64]bool
}

// pairEntry is the latest recorded access by one (thread, PC): the thread's
// clock component and timestamp at that access.
type pairEntry struct {
	clock uint64
	tsc   uint64
}

// oracleVar holds, per thread, the latest clock per accessing PC, separately
// for reads and writes.
type oracleVar struct {
	reads, writes map[int32]map[uint64]pairEntry
}

// NewPairOracle creates a ground-truth detector. Allocation-generation
// tracking follows opts.TrackAllocations exactly as in NewDetector.
func NewPairOracle(opts Options) *PairOracle {
	return &PairOracle{
		hbState: newHBState(opts.TrackAllocations),
		vars:    map[varKey]*oracleVar{},
		seen:    map[[2]uint64]bool{},
		racy:    map[uint64]bool{},
	}
}

// HandleAccess checks the access against every recorded conflicting access
// of every other thread, then records it.
func (d *PairOracle) HandleAccess(a *replay.Access) {
	tid := a.TID
	c := d.clock(tid)
	key := varKey{addr: a.Addr, gen: d.genOf(a.Addr)}
	v := d.vars[key]
	if v == nil {
		v = &oracleVar{
			reads:  map[int32]map[uint64]pairEntry{},
			writes: map[int32]map[uint64]pairEntry{},
		}
		d.vars[key] = v
	}

	// Writes conflict with everything; reads only with writes.
	d.checkTable(a, v.writes, true, c)
	if a.Store {
		d.checkTable(a, v.reads, false, c)
	}

	table := v.reads
	if a.Store {
		table = v.writes
	}
	byPC := table[tid]
	if byPC == nil {
		byPC = map[uint64]pairEntry{}
		table[tid] = byPC
	}
	// Per-thread clocks are monotone, so this entry dominates all earlier
	// accesses by tid at this PC.
	byPC[a.PC] = pairEntry{clock: c.Get(tid), tsc: a.TSC}
}

func (d *PairOracle) checkTable(a *replay.Access, table map[int32]map[uint64]pairEntry, priorIsWrite bool, c *vc.VC) {
	for t, byPC := range table {
		if t == a.TID {
			continue
		}
		covered := c.Get(t)
		for pc, e := range byPC {
			if e.clock > covered {
				d.report(a, AccessInfo{TID: t, PC: pc, Write: priorIsWrite, TSC: e.tsc})
			}
		}
	}
}

func (d *PairOracle) report(a *replay.Access, prior AccessInfo) {
	d.racy[a.Addr] = true
	r := Report{
		Addr:   a.Addr,
		First:  prior,
		Second: AccessInfo{TID: a.TID, PC: a.PC, Write: a.Store, TSC: a.TSC},
	}
	if d.seen[r.Key()] {
		return
	}
	d.seen[r.Key()] = true
	d.reports = append(d.reports, r)
}

// Finish sorts the reports by PC-pair key so the oracle's output is
// independent of map iteration order. It must be called before Reports.
func (d *PairOracle) Finish() {
	sort.Slice(d.reports, func(i, j int) bool {
		a, b := d.reports[i].Key(), d.reports[j].Key()
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
}

// Reports returns the complete deduplicated racy-PC-pair set.
func (d *PairOracle) Reports() []Report { return d.reports }

// RacyAddrSet returns the distinct racy addresses.
func (d *PairOracle) RacyAddrSet() map[uint64]bool { return d.racy }
