package race

import (
	"sort"
	"testing"

	"prorace/internal/replay"
	"prorace/internal/tracefmt"
)

func reportKeys(rs []Report) [][2]uint64 {
	out := make([][2]uint64, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.Key())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TestDjitMatchesFastTrackOnScenarios replays every unit scenario of the
// FastTrack tests through DJIT+ and requires identical race sets — the
// equivalence FastTrack's paper proves.
func TestDjitMatchesFastTrackOnScenarios(t *testing.T) {
	type scenario struct {
		name     string
		sync     []tracefmt.SyncRecord
		accesses map[int32][]replay.Access
	}
	lock := uint64(0x700000)
	cv := uint64(0x700200)
	scenarios := []scenario{
		{"ww-race", nil, map[int32][]replay.Access{
			1: {acc(1, 0x400100, 0x600000, true, 100)},
			2: {acc(2, 0x400200, 0x600000, true, 200)},
		}},
		{"lock-ordered", []tracefmt.SyncRecord{
			syncRec(1, tracefmt.SyncLock, 90, lock, 0),
			syncRec(1, tracefmt.SyncUnlock, 110, lock, 0),
			syncRec(2, tracefmt.SyncLock, 190, lock, 0),
			syncRec(2, tracefmt.SyncUnlock, 210, lock, 0),
		}, map[int32][]replay.Access{
			1: {acc(1, 0x400100, 0x600000, true, 100)},
			2: {acc(2, 0x400200, 0x600000, true, 200)},
		}},
		{"read-shared-then-write", nil, map[int32][]replay.Access{
			1: {acc(1, 0x400101, 0x600000, false, 10)},
			2: {acc(2, 0x400102, 0x600000, false, 20)},
			3: {acc(3, 0x400103, 0x600000, true, 30)},
		}},
		{"fork-join", []tracefmt.SyncRecord{
			syncRec(1, tracefmt.SyncThreadCreate, 50, 2, 0),
			syncRec(2, tracefmt.SyncThreadBegin, 60, 0, 0),
			syncRec(2, tracefmt.SyncThreadExit, 210, 0, 0),
			syncRec(1, tracefmt.SyncThreadJoin, 250, 2, 0),
		}, map[int32][]replay.Access{
			1: {acc(1, 0x400100, 0x600000, true, 40), acc(1, 0x400110, 0x600000, true, 300)},
			2: {acc(2, 0x400200, 0x600000, true, 200)},
		}},
		{"cond-wake", []tracefmt.SyncRecord{
			syncRec(2, tracefmt.SyncLock, 50, lock, 0),
			syncRec(2, tracefmt.SyncCondWait, 60, cv, lock),
			syncRec(1, tracefmt.SyncLock, 80, lock, 0),
			syncRec(1, tracefmt.SyncCondSignal, 110, cv, 0),
			syncRec(1, tracefmt.SyncUnlock, 120, lock, 0),
			syncRec(2, tracefmt.SyncCondWake, 130, cv, lock),
			syncRec(2, tracefmt.SyncUnlock, 160, lock, 0),
		}, map[int32][]replay.Access{
			1: {acc(1, 0x400100, 0x600000, true, 100)},
			2: {acc(2, 0x400200, 0x600000, false, 150)},
		}},
		{"malloc-generations", []tracefmt.SyncRecord{
			syncRec(1, tracefmt.SyncMalloc, 10, 0x10000000, 64),
			syncRec(1, tracefmt.SyncFree, 120, 0x10000000, 0),
			syncRec(2, tracefmt.SyncMalloc, 150, 0x10000000, 64),
		}, map[int32][]replay.Access{
			1: {acc(1, 0x400100, 0x10000000, true, 100)},
			2: {acc(2, 0x400200, 0x10000000, true, 200)},
		}},
	}
	for _, sc := range scenarios {
		ft := Detect(sc.sync, sc.accesses, Options{TrackAllocations: true})
		dj := DetectDjit(sc.sync, sc.accesses, Options{TrackAllocations: true})
		fk, dk := reportKeys(ft.Reports()), reportKeys(dj.Reports())
		if len(fk) != len(dk) {
			t.Errorf("%s: FastTrack %d races, DJIT+ %d", sc.name, len(fk), len(dk))
			continue
		}
		for i := range fk {
			if fk[i] != dk[i] {
				t.Errorf("%s: race %d differs: %v vs %v", sc.name, i, fk[i], dk[i])
			}
		}
	}
}

// TestDjitMatchesFastTrackOnManyAccesses stresses the adaptive read
// representation against DJIT+'s full clocks.
func TestDjitMatchesFastTrackOnManyAccesses(t *testing.T) {
	accesses := map[int32][]replay.Access{}
	// 8 threads interleaving reads and occasional writes over 32 addrs.
	for tid := int32(1); tid <= 8; tid++ {
		for i := 0; i < 200; i++ {
			addr := 0x600000 + uint64((int(tid)*7+i*13)%32)*8
			store := (i+int(tid))%17 == 0
			accesses[tid] = append(accesses[tid],
				acc(tid, 0x400000+uint64(tid)*0x100+uint64(i%5)*32, addr, store, uint64(i*10+int(tid))))
		}
	}
	ft := Detect(nil, accesses, Options{TrackAllocations: true, MaxReports: 100000})
	dj := DetectDjit(nil, accesses, Options{TrackAllocations: true, MaxReports: 100000})
	if len(ft.Reports()) == 0 {
		t.Fatal("stress scenario produced no races")
	}
	// FastTrack guarantees detecting *a* race on every racy variable (its
	// adaptive state forgets older writers, so it reports fewer distinct
	// pairs than DJIT+'s full per-thread history); the equivalence is on
	// the racy-variable sets.
	if len(ft.RacyAddrs) != len(dj.RacyAddrs) {
		t.Fatalf("racy variables: FastTrack %d vs DJIT+ %d", len(ft.RacyAddrs), len(dj.RacyAddrs))
	}
	for addr := range ft.RacyAddrs {
		if !dj.RacyAddrs[addr] {
			t.Fatalf("address %#x racy under FastTrack but not DJIT+", addr)
		}
	}
	// Every FastTrack pair must also be a DJIT+ pair (DJIT+ sees more).
	djSet := map[[2]uint64]bool{}
	for _, k := range reportKeys(dj.Reports()) {
		djSet[k] = true
	}
	for _, k := range reportKeys(ft.Reports()) {
		if !djSet[k] {
			t.Fatalf("FastTrack pair %v missing from DJIT+", k)
		}
	}
	if len(dj.Reports()) < len(ft.Reports()) {
		t.Fatalf("DJIT+ reported fewer pairs (%d) than FastTrack (%d)",
			len(dj.Reports()), len(ft.Reports()))
	}
}
