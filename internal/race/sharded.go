package race

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"prorace/internal/replay"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// ShardedDetector runs FastTrack detection in parallel by partitioning the
// per-variable shadow state across N logical stripes keyed by address
// hash, multiplexed onto M worker goroutines. Each stripe is a complete
// FastTrack detector over its address subset:
//
//   - synchronization records are broadcast to every stripe, so each
//     stripe holds the same view of every thread's vector clock (and of
//     the malloc/free generation map) that the sequential detector would —
//     sync volume is tiny relative to accesses, so the duplication is
//     cheap;
//   - memory accesses are routed to exactly one stripe by address hash.
//     FastTrack only ever compares accesses to the same address, and
//     accesses never modify thread clocks, so routing is lossless: every
//     stripe makes exactly the decisions the sequential detector makes for
//     its subset of addresses.
//
// Earlier revisions pinned each shard to an owner goroutine and handed
// every chunk across a channel — a router hop per chunk, and shard count
// locked to goroutine count. Stripes are instead CAS-claimed: the feeder
// appends event chunks to a stripe's lock-free queue and only when the
// stripe is idle publishes its index to the worker pool; whichever worker
// claims the stripe (a single compare-and-swap) drains everything queued,
// then releases it. Accesses therefore never cross a channel — only
// stripe indices do, at most one in flight per stripe — and N stripes
// oversubscribe M workers freely (N > M spreads hot addresses, M > N is
// clamped). Options.Workers picks M; the report list is identical at
// every (N, M).
//
// Reports stay deterministic: the feeder stamps every event with a global
// sequence number, stripes tag each finding with the sequence of the
// access that produced it, and Finish merges all stripes' findings in
// sequence order before deduplicating and applying MaxReports —
// byte-for-byte the report set sequential FastTrack emits, at any stripe
// or worker count, regardless of how claims interleave.
//
// A ShardedDetector is one-shot: feed events, call Finish once, then read
// Reports/RacyAddrSet. The feeding goroutine must be single; only the
// internal workers run concurrently, and a stripe is only ever drained by
// the one worker holding its claim.
type ShardedDetector struct {
	opts     Options
	stripes  []*stripe
	pending  [][]shardEvent
	seq      uint64
	finished bool
	nworkers int

	// runq carries stripe indices to the worker pool. Capacity is one per
	// stripe and the claim flag guarantees at most one outstanding index
	// per stripe, so the feeder never blocks here.
	runq chan int
	wg   sync.WaitGroup

	// free recycles chunk buffers: workers return each drained chunk, the
	// feeder prefers a recycled buffer over allocating a fresh one, so
	// steady-state ingestion reuses a fixed set of chunk buffers.
	free chan []shardEvent

	reports []Report
	racy    map[uint64]bool
	// seen is the merged report key set (built by Finish, extended by
	// Publish); external buffers reports published before Finish so they
	// fold in after the stripes' own sequence-ordered findings.
	seen     map[[2]uint64]bool
	external []Report

	// Telemetry: plain tallies on the feeder goroutine plus a queue-depth
	// histogram sampled once per flushed chunk. All nil/zero when disabled.
	tel        *telemetry.Registry
	queueDepth *telemetry.Histogram
	nSync      int
	nAccess    int
}

// shardChunkSize amortises queue traffic: events are handed to stripes in
// batches.
const shardChunkSize = 256

// shardEvent is one event stamped with its global stream sequence.
type shardEvent struct {
	seq  uint64
	sync *tracefmt.SyncRecord
	acc  *replay.Access
}

// taggedReport is a stripe finding positioned in the global stream.
type taggedReport struct {
	seq uint64
	r   Report
}

// chunkNode is one queued batch in a stripe's lock-free list.
type chunkNode struct {
	next   *chunkNode
	events []shardEvent
}

// stripe is one logical shard of the shadow state plus its intake queue.
type stripe struct {
	inner *Detector

	// head is a Treiber-style push list: the single feeder pushes, the
	// claiming worker swaps the whole list out and reverses it to FIFO.
	head atomic.Pointer[chunkNode]
	// claimed is the CAS claim word: 0 = idle, 1 = queued-or-running.
	// Whoever wins the 0→1 transition owns the stripe until it stores 0.
	claimed atomic.Int32
	// depth tracks queued-but-undrained chunks, for the queue-depth
	// histogram.
	depth atomic.Int32

	tagged []taggedReport
}

// NewShardedDetector creates a detector with n logical stripes (n < 1 is
// clamped to 1) served by opts.Workers goroutines (0 = one per stripe up
// to GOMAXPROCS). Each stripe enforces the same MaxReports bound as the
// merged output, which is sufficient: any report surviving the global
// first-MaxReports cut is also among the first MaxReports distinct keys of
// its own stripe.
func NewShardedDetector(n int, opts Options) *ShardedDetector {
	if n < 1 {
		n = 1
	}
	if opts.MaxReports == 0 {
		opts.MaxReports = 10000
	}
	workers := opts.Workers
	if workers < 1 {
		workers = n
		if p := runtime.GOMAXPROCS(0); workers > p {
			workers = p
		}
	}
	if workers > n {
		workers = n // more workers than stripes can never all be busy
	}
	d := &ShardedDetector{
		opts:     opts,
		stripes:  make([]*stripe, n),
		pending:  make([][]shardEvent, n),
		nworkers: workers,
		runq:     make(chan int, n),
		free:     make(chan []shardEvent, 4*n),
		racy:     map[uint64]bool{},
		tel:      opts.Telemetry,
	}
	if d.tel != nil {
		d.queueDepth = d.tel.Histogram("prorace_detect_queue_depth",
			"Stripe queue depth (chunks) observed at each flush (scheduling-dependent).", telemetry.DepthBuckets)
	}
	// Inner detectors never publish themselves: the sharded detector owns
	// the merged telemetry so sync broadcasts are not counted once per
	// stripe. The shadow capacity hint names the whole trace; each stripe
	// holds ~1/n of the variables.
	innerOpts := opts
	innerOpts.Telemetry = nil
	innerOpts.ShadowCapacityHint = opts.ShadowCapacityHint / n
	for i := range d.stripes {
		d.stripes[i] = &stripe{inner: NewDetector(innerOpts)}
		d.pending[i] = make([]shardEvent, 0, shardChunkSize)
	}
	d.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go d.worker()
	}
	return d
}

// NumShards reports the logical stripe count.
func (d *ShardedDetector) NumShards() int { return len(d.stripes) }

// NumWorkers reports the resolved worker goroutine count.
func (d *ShardedDetector) NumWorkers() int { return d.nworkers }

// shardOf routes an address to its stripe. Fibonacci hashing spreads the
// regular strides of array workloads evenly.
func (d *ShardedDetector) shardOf(addr uint64) int {
	h := addr * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(d.stripes)))
}

func (d *ShardedDetector) push(i int, ev shardEvent) {
	d.pending[i] = append(d.pending[i], ev)
	if len(d.pending[i]) >= shardChunkSize {
		d.flush(i)
	}
}

// flush queues the pending chunk on stripe i and, if the stripe is idle,
// claims it and publishes its index to the worker pool. The push is a
// single CAS on the stripe's list head; no event data crosses a channel.
func (d *ShardedDetector) flush(i int) {
	if len(d.pending[i]) == 0 {
		return
	}
	s := d.stripes[i]
	d.queueDepth.Observe(float64(s.depth.Load()))
	node := &chunkNode{events: d.pending[i]}
	for {
		old := s.head.Load()
		node.next = old
		if s.head.CompareAndSwap(old, node) {
			break
		}
	}
	s.depth.Add(1)
	if s.claimed.CompareAndSwap(0, 1) {
		d.runq <- i
	}
	select {
	case buf := <-d.free:
		d.pending[i] = buf
	default:
		d.pending[i] = make([]shardEvent, 0, shardChunkSize)
	}
}

// worker claims stripes off the run queue and drains them.
func (d *ShardedDetector) worker() {
	defer d.wg.Done()
	for i := range d.runq {
		d.serve(d.stripes[i])
	}
}

// serve drains everything queued on a claimed stripe, releases the claim,
// and re-claims if the feeder queued more in the release window — the
// standard claim-flag dance that makes lost wakeups impossible: either the
// feeder's post-push CAS sees 0 and publishes the stripe, or serve's own
// re-claim CAS sees 0 first and keeps draining.
func (d *ShardedDetector) serve(s *stripe) {
	for {
		for node := reverseChunks(s.head.Swap(nil)); node != nil; {
			d.drain(s, node.events)
			s.depth.Add(-1)
			next := node.next
			node.next = nil
			clear(node.events)
			select {
			case d.free <- node.events[:0]:
			default:
			}
			node = next
		}
		s.claimed.Store(0)
		if s.head.Load() == nil {
			return
		}
		if !s.claimed.CompareAndSwap(0, 1) {
			return // feeder re-published the stripe; another claim owns it
		}
	}
}

// reverseChunks flips a swapped-out push list (newest first) into FIFO
// order.
func reverseChunks(n *chunkNode) *chunkNode {
	var out *chunkNode
	for n != nil {
		next := n.next
		n.next = out
		out = n
		n = next
	}
	return out
}

// drain applies one chunk to the stripe's detector, tagging findings with
// their event sequence.
func (d *ShardedDetector) drain(s *stripe, chunk []shardEvent) {
	for i := range chunk {
		ev := &chunk[i]
		if ev.sync != nil {
			s.inner.HandleSync(ev.sync)
			continue
		}
		before := len(s.inner.reports)
		s.inner.HandleAccess(ev.acc)
		for _, r := range s.inner.reports[before:] {
			s.tagged = append(s.tagged, taggedReport{seq: ev.seq, r: r})
		}
	}
}

// HandleSync broadcasts one synchronization record to every stripe.
func (d *ShardedDetector) HandleSync(rec *tracefmt.SyncRecord) {
	d.seq++
	d.nSync++
	for i := range d.stripes {
		d.push(i, shardEvent{seq: d.seq, sync: rec})
	}
}

// HandleAccess routes one memory access to its address's stripe.
func (d *ShardedDetector) HandleAccess(a *replay.Access) {
	d.seq++
	d.nAccess++
	d.push(d.shardOf(a.Addr), shardEvent{seq: d.seq, acc: a})
}

// Finish flushes the remaining chunks, waits for every stripe to drain,
// and merges their findings into the deterministic report list.
func (d *ShardedDetector) Finish() {
	if d.finished {
		return
	}
	d.finished = true
	for i := range d.stripes {
		d.flush(i)
	}
	// Every queued chunk is covered by a published claim (flush publishes
	// any idle stripe it queued on), so once the run queue closes the
	// workers finish the outstanding claims and every queue is empty.
	close(d.runq)
	d.wg.Wait()
	var tagged []taggedReport
	for _, s := range d.stripes {
		tagged = append(tagged, s.tagged...)
		for addr := range s.inner.RacyAddrs {
			d.racy[addr] = true
		}
	}
	// Sequence order reproduces the order the sequential detector would
	// have reported in; SliceStable keeps multiple findings of one access
	// (same seq, same stripe) in their within-event order.
	sort.SliceStable(tagged, func(i, j int) bool { return tagged[i].seq < tagged[j].seq })
	d.seen = map[[2]uint64]bool{}
	for _, t := range tagged {
		if d.seen[t.r.Key()] || len(d.reports) >= d.opts.MaxReports {
			continue
		}
		d.seen[t.r.Key()] = true
		d.reports = append(d.reports, t.r)
	}
	d.fold(d.external)
	d.external = nil
	d.publish()
}

// Publish absorbs externally produced reports (the report.Sink side of the
// detector). Reports published before Finish are buffered and folded in
// after the stripes' own sequence-ordered findings, preserving the native
// deterministic order; after Finish they fold in directly. Same
// single-goroutine discipline as the event handlers.
func (d *ShardedDetector) Publish(rs []Report) {
	if !d.finished {
		d.external = append(d.external, rs...)
		return
	}
	d.fold(rs)
}

// fold merges external reports through the same dedup + MaxReports cut as
// the detector's own findings. Finish must have built d.seen.
func (d *ShardedDetector) fold(rs []Report) {
	for i := range rs {
		r := rs[i]
		d.racy[r.Addr] = true
		if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
			continue
		}
		d.seen[r.Key()] = true
		d.reports = append(d.reports, r)
	}
}

// ShadowStats sums the shadow-memory accounting across stripes (each
// address lives in exactly one stripe, so variable counts and table bytes
// add; interner dedup is per-stripe). Finish must have run.
func (d *ShardedDetector) ShadowStats() ShadowStats {
	var sum ShadowStats
	for _, s := range d.stripes {
		st := s.inner.ShadowStats()
		sum.Variables += st.Variables
		sum.TableBytes += st.TableBytes
		sum.PeakTableBytes += st.PeakTableBytes
		sum.InternBytes += st.InternBytes
		sum.ProvBytes += st.ProvBytes
		sum.InternedVCs += st.InternedVCs
		sum.InternHits += st.InternHits
		sum.InternMisses += st.InternMisses
		sum.InternReuses += st.InternReuses
	}
	return sum
}

// publish folds the sharded pass's tallies into the registry: merged event
// counts from the feeder (sync broadcasts counted once, not per stripe),
// read-shared inflations summed across stripes (each address lives in
// exactly one stripe, so the sum equals the sequential detector's count),
// shadow-memory gauges summed the same way, and a per-stripe events_total
// series for load-balance visibility.
func (d *ShardedDetector) publish() {
	if d.tel == nil {
		return
	}
	inflations := 0
	for i, s := range d.stripes {
		inflations += s.inner.inflations
		d.tel.Counter(telemetry.Label("prorace_detect_shard_events_total", "shard", i),
			"Events processed per detection stripe (sync broadcasts + routed accesses).").
			AddInt(s.inner.nSync + s.inner.nAccess)
	}
	publishDetect(d.tel, d.nSync, d.nAccess, inflations)
	publishShadow(d.tel, d.ShadowStats())
	d.tel.Gauge("prorace_detect_shards", "Logical detection stripes in the most recent sharded pass.").Set(int64(len(d.stripes)))
	d.tel.Gauge("prorace_detect_workers", "Worker goroutines multiplexing the stripes in the most recent sharded pass.").Set(int64(d.nworkers))
}

// Reports returns the deduplicated race reports; Finish must have run.
func (d *ShardedDetector) Reports() []Report { return d.reports }

// RacyAddrSet returns the union of racy addresses across stripes, for the
// §5.1 invalidation/regeneration feedback; Finish must have run.
func (d *ShardedDetector) RacyAddrSet() map[uint64]bool { return d.racy }

// DetectSharded runs stripe-parallel FastTrack over a whole trace through
// the same event merge as Detect, returning the finished detector.
func DetectSharded(sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access, shards int, opts Options) *ShardedDetector {
	d := NewShardedDetector(shards, opts)
	Feed(d, sync, accesses)
	d.Finish()
	return d
}
