package race

import (
	"sort"

	"prorace/internal/replay"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// ShardedDetector runs FastTrack detection in parallel by partitioning the
// per-variable state across N shards keyed by address hash. Each shard is a
// complete FastTrack detector running on its own goroutine:
//
//   - synchronization records are broadcast to every shard, so each shard
//     holds the same view of every thread's vector clock (and of the
//     malloc/free generation map) that the sequential detector would —
//     sync volume is tiny relative to accesses, so the duplication is
//     cheap;
//   - memory accesses are routed to exactly one shard by address hash.
//     FastTrack only ever compares accesses to the same address, and
//     accesses never modify thread clocks, so routing is lossless: every
//     shard makes exactly the decisions the sequential detector makes for
//     its subset of addresses.
//
// Reports stay deterministic: the feeder stamps every event with a global
// sequence number, shards tag each finding with the sequence of the access
// that produced it, and Finish merges all shards' findings in sequence
// order before deduplicating and applying MaxReports — byte-for-byte the
// report set sequential FastTrack emits.
//
// A ShardedDetector is one-shot: feed events, call Finish once, then read
// Reports/RacyAddrSet. The feeding goroutine must be single; only the
// internal shard workers run concurrently.
type ShardedDetector struct {
	opts     Options
	shards   []*shardWorker
	pending  [][]shardEvent
	seq      uint64
	finished bool
	// free recycles routing buffers: workers return each processed chunk,
	// the feeder prefers a recycled buffer over allocating a fresh one, so
	// steady-state ingestion reuses a fixed set of chunk buffers.
	free chan []shardEvent

	reports []Report
	racy    map[uint64]bool
	// seen is the merged report key set (built by Finish, extended by
	// Publish); external buffers reports published before Finish so they
	// fold in after the shards' own sequence-ordered findings.
	seen     map[[2]uint64]bool
	external []Report

	// Telemetry: plain tallies on the feeder goroutine plus a queue-depth
	// histogram sampled once per flushed chunk. All nil/zero when disabled.
	tel        *telemetry.Registry
	queueDepth *telemetry.Histogram
	nSync      int
	nAccess    int
}

// shardChunkSize amortises channel traffic: events are handed to shard
// workers in batches.
const shardChunkSize = 256

// shardEvent is one event stamped with its global stream sequence.
type shardEvent struct {
	seq  uint64
	sync *tracefmt.SyncRecord
	acc  *replay.Access
}

// taggedReport is a shard finding positioned in the global stream.
type taggedReport struct {
	seq uint64
	r   Report
}

type shardWorker struct {
	inner  *Detector
	ch     chan []shardEvent
	free   chan<- []shardEvent
	done   chan struct{}
	tagged []taggedReport
}

func (w *shardWorker) run() {
	defer close(w.done)
	for chunk := range w.ch {
		for i := range chunk {
			ev := &chunk[i]
			if ev.sync != nil {
				w.inner.HandleSync(ev.sync)
				continue
			}
			before := len(w.inner.reports)
			w.inner.HandleAccess(ev.acc)
			for _, r := range w.inner.reports[before:] {
				w.tagged = append(w.tagged, taggedReport{seq: ev.seq, r: r})
			}
		}
		// Hand the drained buffer back to the feeder; if the free list is
		// full (the feeder is far ahead) let the buffer drop instead of
		// blocking detection.
		clear(chunk)
		select {
		case w.free <- chunk[:0]:
		default:
		}
	}
}

// NewShardedDetector creates a detector with n shard workers (n < 1 is
// clamped to 1). Each shard enforces the same MaxReports bound as the
// merged output, which is sufficient: any report surviving the global
// first-MaxReports cut is also among the first MaxReports distinct keys of
// its own shard.
func NewShardedDetector(n int, opts Options) *ShardedDetector {
	if n < 1 {
		n = 1
	}
	if opts.MaxReports == 0 {
		opts.MaxReports = 10000
	}
	d := &ShardedDetector{
		opts:    opts,
		shards:  make([]*shardWorker, n),
		pending: make([][]shardEvent, n),
		free:    make(chan []shardEvent, 4*n),
		racy:    map[uint64]bool{},
		tel:     opts.Telemetry,
	}
	if d.tel != nil {
		d.queueDepth = d.tel.Histogram("prorace_detect_queue_depth",
			"Shard-worker channel depth observed at each chunk flush (scheduling-dependent).", telemetry.DepthBuckets)
	}
	// Inner detectors never publish themselves: the sharded detector owns
	// the merged telemetry so sync broadcasts are not counted once per
	// shard.
	innerOpts := opts
	innerOpts.Telemetry = nil
	for i := range d.shards {
		w := &shardWorker{
			inner: NewDetector(innerOpts),
			ch:    make(chan []shardEvent, 4),
			free:  d.free,
			done:  make(chan struct{}),
		}
		d.shards[i] = w
		d.pending[i] = make([]shardEvent, 0, shardChunkSize)
		go w.run()
	}
	return d
}

// NumShards reports the shard count.
func (d *ShardedDetector) NumShards() int { return len(d.shards) }

// shardOf routes an address to its shard. Fibonacci hashing spreads the
// regular strides of array workloads evenly.
func (d *ShardedDetector) shardOf(addr uint64) int {
	h := addr * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(d.shards)))
}

func (d *ShardedDetector) push(i int, ev shardEvent) {
	d.pending[i] = append(d.pending[i], ev)
	if len(d.pending[i]) >= shardChunkSize {
		d.flush(i)
	}
}

func (d *ShardedDetector) flush(i int) {
	if len(d.pending[i]) == 0 {
		return
	}
	d.queueDepth.Observe(float64(len(d.shards[i].ch)))
	d.shards[i].ch <- d.pending[i]
	select {
	case buf := <-d.free:
		d.pending[i] = buf
	default:
		d.pending[i] = make([]shardEvent, 0, shardChunkSize)
	}
}

// HandleSync broadcasts one synchronization record to every shard.
func (d *ShardedDetector) HandleSync(rec *tracefmt.SyncRecord) {
	d.seq++
	d.nSync++
	for i := range d.shards {
		d.push(i, shardEvent{seq: d.seq, sync: rec})
	}
}

// HandleAccess routes one memory access to its address's shard.
func (d *ShardedDetector) HandleAccess(a *replay.Access) {
	d.seq++
	d.nAccess++
	d.push(d.shardOf(a.Addr), shardEvent{seq: d.seq, acc: a})
}

// Finish flushes the remaining chunks, waits for every shard worker, and
// merges their findings into the deterministic report list.
func (d *ShardedDetector) Finish() {
	if d.finished {
		return
	}
	d.finished = true
	for i := range d.shards {
		d.flush(i)
		close(d.shards[i].ch)
	}
	var tagged []taggedReport
	for _, w := range d.shards {
		<-w.done
		tagged = append(tagged, w.tagged...)
		for addr := range w.inner.RacyAddrs {
			d.racy[addr] = true
		}
	}
	// Sequence order reproduces the order the sequential detector would
	// have reported in; SliceStable keeps multiple findings of one access
	// (same seq, same shard) in their within-event order.
	sort.SliceStable(tagged, func(i, j int) bool { return tagged[i].seq < tagged[j].seq })
	d.seen = map[[2]uint64]bool{}
	for _, t := range tagged {
		if d.seen[t.r.Key()] || len(d.reports) >= d.opts.MaxReports {
			continue
		}
		d.seen[t.r.Key()] = true
		d.reports = append(d.reports, t.r)
	}
	d.fold(d.external)
	d.external = nil
	d.publish()
}

// Publish absorbs externally produced reports (the report.Sink side of the
// detector). Reports published before Finish are buffered and folded in
// after the shards' own sequence-ordered findings, preserving the native
// deterministic order; after Finish they fold in directly. Same
// single-goroutine discipline as the event handlers.
func (d *ShardedDetector) Publish(rs []Report) {
	if !d.finished {
		d.external = append(d.external, rs...)
		return
	}
	d.fold(rs)
}

// fold merges external reports through the same dedup + MaxReports cut as
// the detector's own findings. Finish must have built d.seen.
func (d *ShardedDetector) fold(rs []Report) {
	for i := range rs {
		r := rs[i]
		d.racy[r.Addr] = true
		if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
			continue
		}
		d.seen[r.Key()] = true
		d.reports = append(d.reports, r)
	}
}

// publish folds the sharded pass's tallies into the registry: merged event
// counts from the feeder (sync broadcasts counted once, not per shard),
// read-shared inflations summed across shards (each address lives in
// exactly one shard, so the sum equals the sequential detector's count),
// and a per-shard events_total series for load-balance visibility.
func (d *ShardedDetector) publish() {
	if d.tel == nil {
		return
	}
	inflations := 0
	for i, w := range d.shards {
		inflations += w.inner.inflations
		d.tel.Counter(telemetry.Label("prorace_detect_shard_events_total", "shard", i),
			"Events processed per detection shard (sync broadcasts + routed accesses).").
			AddInt(w.inner.nSync + w.inner.nAccess)
	}
	publishDetect(d.tel, d.nSync, d.nAccess, inflations)
	d.tel.Gauge("prorace_detect_shards", "Shard workers in the most recent sharded detection pass.").Set(int64(len(d.shards)))
}

// Reports returns the deduplicated race reports; Finish must have run.
func (d *ShardedDetector) Reports() []Report { return d.reports }

// RacyAddrSet returns the union of racy addresses across shards, for the
// §5.1 invalidation/regeneration feedback; Finish must have run.
func (d *ShardedDetector) RacyAddrSet() map[uint64]bool { return d.racy }

// DetectSharded runs address-sharded parallel FastTrack over a whole trace
// through the same event merge as Detect, returning the finished detector.
func DetectSharded(sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access, shards int, opts Options) *ShardedDetector {
	d := NewShardedDetector(shards, opts)
	Feed(d, sync, accesses)
	d.Finish()
	return d
}
