// Package race implements the FastTrack happens-before data race detector
// (Flanagan & Freund, PLDI 2009) that ProRace runs offline over the
// synchronization trace plus the extended (sampled + reconstructed) memory
// trace (paper §3, §4.3).
//
// Happens-before edges come from the synchronization log: lock release →
// acquire, condition signal → wake, barrier all-to-all, thread create →
// begin, and exit → join. malloc/free are tracked so two objects that
// happen to reuse one address are never confused — the §4.3 false-positive
// scenario.
package race

import (
	"fmt"
	"sort"
	"sync"

	"prorace/internal/replay"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/vc"
)

// Report is one detected data race: two accesses to the same address, at
// least one a write, unordered by happens-before.
type Report struct {
	Addr uint64
	// First and Second describe the two conflicting accesses; Second is
	// the one at which the race was detected.
	First, Second AccessInfo
	// GapAdjacent marks a report that involves a thread whose trace was
	// degraded (decode gaps, dropped records, analysis errors). Such
	// reports may be artifacts of conservatively widened happens-before
	// and deserve extra scrutiny. The flag is set by the analysis layer
	// after detection; it does not participate in Key().
	GapAdjacent bool
	// Witness, when non-empty, is a serialized internal/witness
	// reproduction recipe (the prorace-witness text format) that replays
	// the program deterministically to this racing pair. It is attached
	// by the analysis layer behind AnalysisOptions.Witnesses and carried
	// through every report.Sink; it participates in neither Key() nor
	// String().
	Witness string
}

// AccessInfo locates one side of a race.
type AccessInfo struct {
	TID   int32
	PC    uint64
	Write bool
	TSC   uint64
}

// Key canonicalises the race for deduplication: the unordered pair of PCs.
func (r Report) Key() [2]uint64 {
	a, b := r.First.PC, r.Second.PC
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

// String renders the race for logs.
func (r Report) String() string {
	return fmt.Sprintf("race on %#x: T%d %s@%#x vs T%d %s@%#x",
		r.Addr, r.First.TID, rw(r.First.Write), r.First.PC,
		r.Second.TID, rw(r.Second.Write), r.Second.PC)
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// Options configures detection.
type Options struct {
	// MaxReports bounds the report list (default 10000).
	MaxReports int
	// TrackAllocations enables malloc/free generation tracking (default
	// on via Detect; disable for the ablation that shows the §4.3
	// address-reuse false positive).
	TrackAllocations bool
	// Telemetry receives the prorace_detect_* series, published once in
	// Finish. The event hot path only maintains plain per-detector ints;
	// nil disables publication entirely.
	Telemetry *telemetry.Registry
	// Workers (sharded detector only) bounds the worker goroutines that
	// multiplex the logical detection stripes: 0 = one worker per stripe
	// up to GOMAXPROCS, n > 0 = exactly n workers. Stripes are
	// CAS-claimed, so any worker count produces the identical report
	// list.
	Workers int
	// ShadowCapacityHint pre-sizes each detector's flat shadow table for
	// the expected live-variable count, avoiding growth rehashes on
	// workloads whose scale is known up front. 0 = small default. For the
	// sharded detector the hint names the whole trace's variable count
	// and is divided across stripes.
	ShadowCapacityHint int
}

// Detector runs FastTrack over a merged event stream. Per-variable state
// lives in a flat open-addressing shadow table (shadow.go): one inline
// 72-byte slot per variable, shared-read vector clocks deduplicated
// through a vc.Interner and shared-read provenance slab-allocated in a
// provPool — no per-variable heap objects.
type Detector struct {
	opts Options

	hbState // shared sync-clock machinery (hb.go)

	shadow  shadowTable
	intern  *vc.Interner
	prov    provPool
	scratch []uint64 // reusable build buffer for interned-VC updates

	reports []Report
	seen    map[[2]uint64]bool
	// RacyAddrs collects distinct addresses with detected races, for the
	// §5.1 invalidation/regeneration feedback into the replay engine.
	RacyAddrs map[uint64]bool

	// Plain event tallies for telemetry: ints on the single-goroutine hot
	// path, flushed to the registry once in Finish.
	nSync      int
	nAccess    int
	inflations int // epoch → vector-clock read-state transitions
	published  bool
}

type varKey struct {
	addr uint64
	gen  uint32
}

// NewDetector creates a detector.
func NewDetector(opts Options) *Detector {
	if opts.MaxReports == 0 {
		opts.MaxReports = 10000
	}
	return &Detector{
		opts:      opts,
		hbState:   newHBState(opts.TrackAllocations),
		shadow:    newShadowTable(opts.ShadowCapacityHint),
		intern:    vc.NewInterner(),
		prov:      newProvPool(),
		reports:   nil,
		seen:      map[[2]uint64]bool{},
		RacyAddrs: map[uint64]bool{},
	}
}

// HandleSync processes one synchronization record.
func (d *Detector) HandleSync(rec *tracefmt.SyncRecord) {
	d.nSync++
	d.hbState.HandleSync(rec)
}

// HandleAccess processes one memory access of the extended trace. The
// decision logic is FastTrack's, identical to the reference map-based
// detector (reference.go); only the state representation differs.
func (d *Detector) HandleAccess(a *replay.Access) {
	d.nAccess++
	tid := a.TID
	c := d.clock(tid)
	s := d.shadow.slot(a.Addr, d.genOf(a.Addr))
	me := c.EpochOf(tid)

	if a.Store {
		// Write-write race?
		if s.flags&slotHasWrite != 0 && s.w.TID() != tid && !s.w.LEQ(c) {
			d.report(a, AccessInfo{TID: s.w.TID(), PC: s.wPC, Write: true, TSC: s.wTSC})
		}
		// Read-write races?
		if s.flags&slotHasRead != 0 {
			if s.flags&slotShared != 0 {
				// Ascending TID over the canonical (trimmed) vector: the
				// same order — and therefore the same first-reported PC
				// pairs — as the reference detector's scan.
				for t, cl := range d.intern.Clocks(s.rvc) {
					rt := int32(t)
					if cl == 0 || rt == tid {
						continue
					}
					if cl > c.Get(rt) {
						pc, tsc := d.prov.get(s.prov, rt)
						d.report(a, AccessInfo{TID: rt, PC: pc, Write: false, TSC: tsc})
					}
				}
			} else if s.r.TID() != tid && !s.r.LEQ(c) {
				d.report(a, AccessInfo{TID: s.r.TID(), PC: s.rPC, Write: false, TSC: s.rTSC})
			}
		}
		s.flags |= slotHasWrite
		s.w = me
		s.wPC, s.wTSC = a.PC, a.TSC
		return
	}

	// Read: write-read race?
	if s.flags&slotHasWrite != 0 && s.w.TID() != tid && !s.w.LEQ(c) {
		d.report(a, AccessInfo{TID: s.w.TID(), PC: s.wPC, Write: true, TSC: s.wTSC})
	}
	// Update read state (FastTrack's adaptive representation).
	if s.flags&slotShared != 0 {
		old := s.rvc
		s.rvc, d.scratch = d.intern.WithSet(old, tid, me.Clock(), d.scratch)
		d.intern.Release(old)
		d.prov.set(&s.prov, tid, a.PC, a.TSC)
		return
	}
	if s.flags&slotHasRead == 0 || s.r.TID() == tid || s.r.LEQ(c) {
		s.flags |= slotHasRead
		s.r = me
		s.rPC, s.rTSC = a.PC, a.TSC
		return
	}
	// Inflate to read-shared: build the two-reader vector in the scratch
	// buffer and intern it; provenance moves into a slab row.
	d.inflations++
	prev := s.r.TID()
	n := int(tid) + 1
	if int(prev) >= n {
		n = int(prev) + 1
	}
	if cap(d.scratch) < n {
		d.scratch = make([]uint64, n)
	}
	d.scratch = d.scratch[:n]
	clear(d.scratch)
	d.scratch[prev] = s.r.Clock()
	d.scratch[tid] = me.Clock()
	s.rvc = d.intern.Intern(d.scratch)
	s.prov = d.prov.newRow(2)
	d.prov.set(&s.prov, prev, s.rPC, s.rTSC)
	d.prov.set(&s.prov, tid, a.PC, a.TSC)
	s.flags |= slotShared
}

// ShadowStats is the detector's resident shadow-memory accounting, the
// basis of the bytes-per-variable measurements and the
// prorace_detect_shadow_* telemetry.
type ShadowStats struct {
	// Variables is the number of live shadow slots (distinct varKeys).
	Variables int
	// TableBytes is the flat slot array's resident size; PeakTableBytes its
	// high-water mark across growth.
	TableBytes     uint64
	PeakTableBytes uint64
	// InternBytes / ProvBytes are the interner's and provenance pool's slab
	// footprints; InternedVCs the distinct live vectors.
	InternBytes uint64
	ProvBytes   uint64
	InternedVCs int
	// InternHits / InternMisses / InternReuses expose dedup effectiveness.
	InternHits, InternMisses, InternReuses uint64
}

// Bytes is the total resident shadow footprint.
func (s ShadowStats) Bytes() uint64 { return s.TableBytes + s.InternBytes + s.ProvBytes }

// PeakBytes is the high-water shadow footprint (slab pools only grow, so
// only the table term differs from Bytes).
func (s ShadowStats) PeakBytes() uint64 { return s.PeakTableBytes + s.InternBytes + s.ProvBytes }

// ShadowStats returns the detector's current shadow-memory accounting.
func (d *Detector) ShadowStats() ShadowStats {
	return ShadowStats{
		Variables:      d.shadow.used,
		TableBytes:     d.shadow.bytes(),
		PeakTableBytes: d.shadow.peak,
		InternBytes:    d.intern.Bytes(),
		ProvBytes:      d.prov.bytes(),
		InternedVCs:    d.intern.Live(),
		InternHits:     d.intern.Hits(),
		InternMisses:   d.intern.Misses(),
		InternReuses:   d.intern.Reuses(),
	}
}

func (d *Detector) report(a *replay.Access, prior AccessInfo) {
	d.RacyAddrs[a.Addr] = true
	r := Report{
		Addr:   a.Addr,
		First:  prior,
		Second: AccessInfo{TID: a.TID, PC: a.PC, Write: a.Store, TSC: a.TSC},
	}
	if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
		return
	}
	d.seen[r.Key()] = true
	d.reports = append(d.reports, r)
}

// Reports returns the deduplicated race reports.
func (d *Detector) Reports() []Report { return d.reports }

// Finish completes the detector: the sequential detector needs no
// draining, so this only flushes the event tallies into the telemetry
// registry (once — repeated calls are no-ops), keeping Detector a valid
// ReportSink.
func (d *Detector) Finish() {
	tel := d.opts.Telemetry
	if tel == nil || d.published {
		return
	}
	d.published = true
	publishDetect(tel, d.nSync, d.nAccess, d.inflations)
	publishShadow(tel, d.ShadowStats())
}

// publishDetect folds one detection pass's tallies into the registry.
func publishDetect(tel *telemetry.Registry, nSync, nAccess, inflations int) {
	tel.Counter("prorace_detect_sync_events_total", "Synchronization records processed by detection.").AddInt(nSync)
	tel.Counter("prorace_detect_access_events_total", "Memory accesses processed by detection.").AddInt(nAccess)
	tel.Counter("prorace_detect_read_share_inflations_total", "FastTrack read-epoch to vector-clock (read-shared) transitions.").AddInt(inflations)
}

// publishShadow folds a pass's shadow-memory accounting into the registry
// (for the sharded detector, st is the sum across stripes).
func publishShadow(tel *telemetry.Registry, st ShadowStats) {
	tel.Gauge("prorace_detect_shadow_variables", "Live shadow-table slots (distinct variables) after the detection pass.").Set(int64(st.Variables))
	tel.Gauge("prorace_detect_shadow_bytes", "Resident shadow-state bytes (flat table + VC interner + provenance slabs).").Set(int64(st.Bytes()))
	tel.Gauge("prorace_detect_shadow_bytes_peak", "High-water shadow-state bytes across the detection pass.").Set(int64(st.PeakBytes()))
	tel.Gauge("prorace_detect_vc_interned", "Distinct live interned vector clocks.").Set(int64(st.InternedVCs))
	tel.Counter("prorace_detect_vc_intern_hits_total", "Interned-VC lookups served by an existing shared vector.").AddInt(int(st.InternHits))
	tel.Counter("prorace_detect_vc_intern_misses_total", "Interned-VC lookups that inserted a fresh vector.").AddInt(int(st.InternMisses))
	tel.Counter("prorace_detect_vc_intern_reuses_total", "Fresh interned-VC insertions served from recycled slab regions.").AddInt(int(st.InternReuses))
}

// RacyAddrSet returns the distinct racy addresses, for the §5.1 feedback.
func (d *Detector) RacyAddrSet() map[uint64]bool { return d.RacyAddrs }

// Publish absorbs a batch of externally produced reports into the
// detector's deduplicated set — the report.Sink side of the detector, for
// folding findings from another analysis round (or another machine) into
// this one. Published addresses join RacyAddrs so the §5.1 feedback loop
// treats them as racy. Same single-goroutine discipline as the handlers.
func (d *Detector) Publish(rs []Report) {
	for i := range rs {
		r := rs[i]
		d.RacyAddrs[r.Addr] = true
		if d.seen[r.Key()] || len(d.reports) >= d.opts.MaxReports {
			continue
		}
		d.seen[r.Key()] = true
		d.reports = append(d.reports, r)
	}
}

// Event is one entry of a thread's happens-before-consistent event stream:
// exactly one of Sync or Acc is set.
type Event struct {
	TSC  uint64
	Sync *tracefmt.SyncRecord
	Acc  *replay.Access
}

// isRelease reports whether a sync record publishes the thread's clock
// (release side of an HB edge). At equal timestamps, release-side records
// must be processed before the acquire-side records they enable — e.g. a
// barrier arrival before the barrier wakes it causes.
func isRelease(k tracefmt.SyncKind) bool {
	switch k {
	case tracefmt.SyncUnlock, tracefmt.SyncCondWait, tracefmt.SyncCondSignal,
		tracefmt.SyncCondBroadcast, tracefmt.SyncBarrier,
		tracefmt.SyncThreadCreate, tracefmt.SyncThreadExit:
		return true
	}
	return false
}

// isAcquire reports whether a sync record absorbs another clock.
func isAcquire(k tracefmt.SyncKind) bool {
	switch k {
	case tracefmt.SyncLock, tracefmt.SyncCondWake, tracefmt.SyncBarrierWake,
		tracefmt.SyncThreadBegin, tracefmt.SyncThreadJoin:
		return true
	}
	return false
}

// mergePriority orders events at equal TSC across threads: releases first,
// then neutral events (accesses, malloc/free), then acquires, so an HB edge
// whose two sides collapsed onto one timestamp still flows the right way.
func (e *Event) mergePriority() int {
	if e.Sync != nil {
		if isRelease(e.Sync.Kind) {
			return 0
		}
		if isAcquire(e.Sync.Kind) {
			return 2
		}
	}
	return 1
}

// threadMerger interleaves one thread's sync records and accesses into
// program order, one event at a time. It is the single source of truth for
// the within-thread order; ThreadStream materialises it, StreamThread
// batches it into pooled chunks.
type threadMerger struct {
	sync   []tracefmt.SyncRecord
	accs   []replay.Access
	si, ai int
}

// newThreadMerger sorts the access slice in place (by TSC, then path step)
// and positions the merger at the thread's first event.
func newThreadMerger(sync []tracefmt.SyncRecord, accs []replay.Access) threadMerger {
	sort.SliceStable(accs, func(i, j int) bool {
		if accs[i].TSC != accs[j].TSC {
			return accs[i].TSC < accs[j].TSC
		}
		return accs[i].Step < accs[j].Step
	})
	return threadMerger{sync: sync, accs: accs}
}

func (m *threadMerger) remaining() int { return len(m.sync) - m.si + len(m.accs) - m.ai }

// next returns the thread's next event; ok is false at end of stream. At
// equal TSC, acquires precede accesses and accesses precede releases,
// keeping accesses inside their critical sections.
func (m *threadMerger) next() (Event, bool) {
	si, ai := m.si, m.ai
	if si == len(m.sync) && ai == len(m.accs) {
		return Event{}, false
	}
	takeSync := false
	switch {
	case si == len(m.sync):
		takeSync = false
	case ai == len(m.accs):
		takeSync = true
	case m.sync[si].TSC < m.accs[ai].TSC:
		takeSync = true
	case m.sync[si].TSC > m.accs[ai].TSC:
		takeSync = false
	default: // tie: acquires first, releases last
		takeSync = isAcquire(m.sync[si].Kind)
	}
	if takeSync {
		m.si++
		return Event{TSC: m.sync[si].TSC, Sync: &m.sync[si]}, true
	}
	m.ai++
	return Event{TSC: m.accs[ai].TSC, Acc: &m.accs[ai]}, true
}

// ThreadStream builds one thread's events in program order: sync records
// arrive in machine order; accesses are ordered by path step (or TSC when
// unpinned). At equal TSC within a thread, acquires precede accesses and
// accesses precede releases, keeping accesses inside their critical
// sections. The access slice is sorted in place.
func ThreadStream(sync []tracefmt.SyncRecord, accs []replay.Access) []Event {
	m := newThreadMerger(sync, accs)
	out := make([]Event, 0, m.remaining())
	for {
		ev, ok := m.next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// EventChunkSize is the fixed batch size of streamed event delivery: one
// chunk is the unit handed from a per-thread producer to the k-way merger.
const EventChunkSize = 512

// eventChunks recycles the fixed-size batches that StreamThread emits and
// FeedStreamsPooled consumes, so a streamed detection pass allocates a
// handful of chunks total instead of one event slice per thread.
var eventChunks = sync.Pool{
	New: func() any { return make([]Event, 0, EventChunkSize) },
}

func getEventChunk() []Event { return eventChunks.Get().([]Event)[:0] }

func putEventChunk(c []Event) {
	if cap(c) >= EventChunkSize {
		clear(c[:cap(c)])
		eventChunks.Put(c[:0])
	}
}

// StreamThread writes one thread's happens-before-consistent event stream
// to ch as fixed-size batches drawn from the chunk pool, then closes ch.
// The event order is exactly ThreadStream's; the access slice is sorted in
// place. Consumers must hand each chunk back via FeedStreamsPooled (or
// otherwise not retain it) once processed.
func StreamThread(ch chan<- []Event, sync []tracefmt.SyncRecord, accs []replay.Access) {
	m := newThreadMerger(sync, accs)
	chunk := getEventChunk()
	for {
		ev, ok := m.next()
		if !ok {
			break
		}
		chunk = append(chunk, ev)
		if len(chunk) == cap(chunk) {
			ch <- chunk
			chunk = getEventChunk()
		}
	}
	if len(chunk) > 0 {
		ch <- chunk
	} else {
		putEventChunk(chunk)
	}
	close(ch)
}

// SyncByTID partitions sync records per thread, preserving machine order.
func SyncByTID(sync []tracefmt.SyncRecord) map[int32][]tracefmt.SyncRecord {
	out := map[int32][]tracefmt.SyncRecord{}
	for _, rec := range sync {
		out[rec.TID] = append(out[rec.TID], rec)
	}
	return out
}

// EventSink consumes the merged happens-before-consistent event stream.
// Detector (FastTrack), DjitDetector (DJIT+) and ShardedDetector all
// implement it, so one feed path drives every detector.
type EventSink interface {
	HandleSync(rec *tracefmt.SyncRecord)
	HandleAccess(a *replay.Access)
}

// Checker is the EventSink interface under its former name.
//
// Deprecated: use EventSink.
type Checker = EventSink

// ReportSink is an EventSink that accumulates race reports. Finish must be
// called after the last event and before Reports/RacyAddrSet; for the
// sequential detectors it is a no-op, for ShardedDetector it drains the
// shard workers and merges their findings deterministically.
type ReportSink interface {
	EventSink
	Finish()
	Reports() []Report
	RacyAddrSet() map[uint64]bool
}

// Detect runs FastTrack over a whole trace: sync records plus the extended
// memory trace, merged into a happens-before-consistent order (per-thread
// program order preserved, cross-thread interleaving by TSC with releases
// winning ties).
func Detect(sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access, opts Options) *Detector {
	d := NewDetector(opts)
	Feed(d, sync, accesses)
	return d
}

// streamCursor walks one thread's event stream, either fully materialised
// (buf only) or delivered incrementally as chunks on ch. With recycle set,
// each exhausted chunk is returned to the chunk pool — only safe when the
// producer drew its chunks from the pool (StreamThread), never for chunks
// sliced out of a shared backing array.
type streamCursor struct {
	buf     []Event
	pos     int
	ch      <-chan []Event
	recycle bool
}

// head returns the next event, blocking on the channel for the next chunk
// when the buffer is exhausted; nil means the stream ended.
func (c *streamCursor) head() *Event {
	for c.pos >= len(c.buf) {
		if c.recycle && c.buf != nil {
			putEventChunk(c.buf)
			c.buf = nil
		}
		if c.ch == nil {
			return nil
		}
		chunk, ok := <-c.ch
		if !ok {
			c.ch = nil
			return nil
		}
		c.buf, c.pos = chunk, 0
	}
	return &c.buf[c.pos]
}

// mergeCursors k-way merges the cursors into the sink: events are emitted
// in (TSC, mergePriority, thread index) order, so the interleaving is
// deterministic for a given cursor order.
func mergeCursors(sink EventSink, cursors []*streamCursor) {
	for {
		best := -1
		var bh *Event
		for i, c := range cursors {
			h := c.head()
			if h == nil {
				continue
			}
			if best < 0 || h.TSC < bh.TSC || (h.TSC == bh.TSC && h.mergePriority() < bh.mergePriority()) {
				best, bh = i, h
			}
		}
		if best < 0 {
			return
		}
		if bh.Sync != nil {
			sink.HandleSync(bh.Sync)
		} else {
			sink.HandleAccess(bh.Acc)
		}
		cursors[best].pos++
	}
}

// Feed merges the trace into happens-before-consistent order and drives
// the sink with it.
func Feed(sink EventSink, sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access) {
	syncByTID := SyncByTID(sync)
	tidSet := map[int32]bool{}
	for tid := range syncByTID {
		tidSet[tid] = true
	}
	for tid := range accesses {
		tidSet[tid] = true
	}
	tids := make([]int32, 0, len(tidSet))
	for tid := range tidSet {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	cursors := make([]*streamCursor, len(tids))
	for i, tid := range tids {
		cursors[i] = &streamCursor{buf: ThreadStream(syncByTID[tid], accesses[tid])}
	}
	mergeCursors(sink, cursors)
}

// FeedStreams merges per-thread event streams arriving as ordered chunks
// on channels and drives the sink with the global interleaving. The merge
// blocks until every live stream has a buffered head, so producers should
// emit chunks promptly; the resulting event order is identical to Feed over
// the fully materialised streams. Cursor order follows ascending thread id,
// keeping tie-breaks deterministic.
func FeedStreams(sink EventSink, streams map[int32]<-chan []Event) {
	feedStreams(sink, streams, false)
}

// FeedStreamsPooled is FeedStreams for producers that emit pool-drawn
// chunks (StreamThread): each chunk is recycled into the chunk pool as soon
// as the merge has consumed it. Chunks that alias a shared backing array
// must go through FeedStreams instead.
func FeedStreamsPooled(sink EventSink, streams map[int32]<-chan []Event) {
	feedStreams(sink, streams, true)
}

func feedStreams(sink EventSink, streams map[int32]<-chan []Event, recycle bool) {
	tids := make([]int32, 0, len(streams))
	for tid := range streams {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	cursors := make([]*streamCursor, len(tids))
	for i, tid := range tids {
		cursors[i] = &streamCursor{ch: streams[tid], recycle: recycle}
	}
	mergeCursors(sink, cursors)
}
