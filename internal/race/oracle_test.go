// PairOracle ground-truth detector tests: the oracle must report every racy
// PC pair (a superset of FastTrack's epoch-compressed reports), exactly the
// same racy addresses, and nothing at all on well-synchronized inputs.
package race_test

import (
	"testing"

	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

func runPairOracle(sync []tracefmt.SyncRecord, accs map[int32][]replay.Access) *race.PairOracle {
	o := race.NewPairOracle(race.Options{TrackAllocations: true})
	race.Feed(o, sync, accs)
	o.Finish()
	return o
}

func sameAddrSet(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestPairOracleSubsumesFastTrack: on every hand-built scenario, FastTrack's
// pair set must be contained in the oracle's, and the racy-address sets must
// coincide (FastTrack finds at least one race per racy variable).
func TestPairOracleSubsumesFastTrack(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			ft := race.Detect(sc.sync, sc.accs, race.Options{TrackAllocations: true})
			o := runPairOracle(sc.sync, sc.accs)
			oracleKeys := raceKeys(o.Reports())
			for _, r := range ft.Reports() {
				if !oracleKeys[r.Key()] {
					t.Errorf("FastTrack pair %x not in oracle set", r.Key())
				}
			}
			if !sameAddrSet(ft.RacyAddrSet(), o.RacyAddrSet()) {
				t.Errorf("racy addr sets differ: FastTrack %d, oracle %d",
					len(ft.RacyAddrSet()), len(o.RacyAddrSet()))
			}
		})
	}
}

// TestPairOracleCompleteBeyondFastTrack is the case motivating the oracle:
// three threads write one address with no synchronization. FastTrack's write
// epoch only remembers the most recent writer, so it reports {T1,T2} and
// {T2,T3} but never {T1,T3}. The oracle must report all three pairs.
func TestPairOracleCompleteBeyondFastTrack(t *testing.T) {
	accs := map[int32][]replay.Access{
		1: {eacc(1, 0x400100, 0x600000, true, 100)},
		2: {eacc(2, 0x400200, 0x600000, true, 200)},
		3: {eacc(3, 0x400300, 0x600000, true, 300)},
	}
	o := runPairOracle(nil, accs)
	keys := raceKeys(o.Reports())
	want := [][2]uint64{
		{0x400100, 0x400200},
		{0x400100, 0x400300},
		{0x400200, 0x400300},
	}
	if len(keys) != len(want) {
		t.Fatalf("oracle reported %d pairs, want %d: %v", len(keys), len(want), o.Reports())
	}
	for _, k := range want {
		if !keys[k] {
			t.Errorf("missing pair %x", k)
		}
	}

	ft := race.Detect(nil, accs, race.Options{TrackAllocations: true})
	if len(ft.Reports()) >= len(want) {
		t.Logf("note: FastTrack reported %d pairs here; the oracle exists for interleavings where it reports fewer", len(ft.Reports()))
	}
}

// TestPairOracleCleanPrograms: happens-before-ordered accesses produce no
// reports, whichever edge type provides the ordering.
func TestPairOracleCleanPrograms(t *testing.T) {
	lock := uint64(0x700000)
	cases := []scenario{
		{
			name: "lock ordered",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncLock, 90, lock, 0),
				esync(1, tracefmt.SyncUnlock, 110, lock, 0),
				esync(2, tracefmt.SyncLock, 190, lock, 0),
				esync(2, tracefmt.SyncUnlock, 210, lock, 0),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 100)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "fork-join ordered",
			sync: []tracefmt.SyncRecord{
				esync(1, tracefmt.SyncThreadCreate, 50, 2, 0),
				esync(2, tracefmt.SyncThreadBegin, 60, 0, 0),
				esync(2, tracefmt.SyncThreadExit, 250, 0, 0),
				esync(1, tracefmt.SyncThreadJoin, 260, 2, 0),
			},
			accs: map[int32][]replay.Access{
				1: {eacc(1, 0x400100, 0x600000, true, 40), eacc(1, 0x400110, 0x600000, true, 300)},
				2: {eacc(2, 0x400200, 0x600000, true, 200)},
			},
		},
		{
			name: "same-thread only",
			accs: map[int32][]replay.Access{
				1: {
					eacc(1, 0x400100, 0x600000, true, 100),
					eacc(1, 0x400110, 0x600000, false, 200),
					eacc(1, 0x400120, 0x600000, true, 300),
				},
			},
		},
	}
	for _, sc := range cases {
		t.Run(sc.name, func(t *testing.T) {
			o := runPairOracle(sc.sync, sc.accs)
			if len(o.Reports()) != 0 {
				t.Errorf("clean input produced %d reports: %v", len(o.Reports()), o.Reports())
			}
			if len(o.RacyAddrSet()) != 0 {
				t.Errorf("clean input produced racy addrs: %v", o.RacyAddrSet())
			}
		})
	}
}

// TestPairOracleOrderIndependent: the reported pair set must not depend on
// the merge interleaving. Feeding the three-writer case with timestamps
// permuted (so the k-way merge emits the accesses in every order) must give
// the same set.
func TestPairOracleOrderIndependent(t *testing.T) {
	perms := [][3]uint64{
		{100, 200, 300}, {100, 300, 200}, {200, 100, 300},
		{200, 300, 100}, {300, 100, 200}, {300, 200, 100},
	}
	var want map[[2]uint64]bool
	for i, p := range perms {
		accs := map[int32][]replay.Access{
			1: {eacc(1, 0x400100, 0x600000, true, p[0])},
			2: {eacc(2, 0x400200, 0x600000, true, p[1])},
			3: {eacc(3, 0x400300, 0x600000, true, p[2])},
		}
		got := raceKeys(runPairOracle(nil, accs).Reports())
		if i == 0 {
			want = got
			if len(want) != 3 {
				t.Fatalf("expected 3 pairs, got %d", len(want))
			}
			continue
		}
		if !sameKeySet(got, want) {
			t.Errorf("permutation %v: pair set differs from first permutation", p)
		}
	}
}

// TestPairOracleOnWorkloads runs the oracle on real pipeline output for a
// couple of workloads and checks the FastTrack-subset invariant end to end.
func TestPairOracleOnWorkloads(t *testing.T) {
	for _, w := range workload.All(1)[:3] {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			sync, accs := tracedInput(t, w, 2000, 7)
			ft := race.Detect(sync, accs, race.Options{TrackAllocations: true})
			oracleKeys := raceKeys(runPairOracle(sync, accs).Reports())
			for _, r := range ft.Reports() {
				if !oracleKeys[r.Key()] {
					t.Errorf("FastTrack pair %x not in oracle set", r.Key())
				}
			}
		})
	}
}
