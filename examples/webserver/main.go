// Webserver: monitor the apache application model in production and catch
// a real-world bug pattern — apache bug #21287 ("corrupted log"), a race on
// a register-indirectly addressed log slot (paper Table 2).
//
// The example shows the production-monitoring story of the paper's §3:
// tracing overhead stays negligible on the network-bound server while
// repeated traces accumulate detection probability, and the same traces
// analysed with the RaceZ baseline miss the bug.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"prorace"
)

func main() {
	bug, err := prorace.BugByID("apache-21287")
	if err != nil {
		log.Fatal(err)
	}
	built := bug.Build(1)
	p := built.Workload.Program
	fmt.Printf("workload: %s (%d threads), bug %s — %s via %s access\n\n",
		bug.App, built.Workload.Threads, bug.ID, bug.Manifestation, bug.Type)

	const period = 1000
	const traces = 10
	detectedPro, detectedRZ := 0, 0
	var overheadSum float64

	for seed := int64(1); seed <= traces; seed++ {
		// ProRace: redesigned driver + PT, forward/backward reconstruction.
		tr, err := prorace.TraceWith(p,
			prorace.WithMachine(built.Workload.Machine),
			prorace.WithPeriod(period),
			prorace.WithSeed(seed),
			prorace.WithOverheadMeasurement(),
		)
		if err != nil {
			log.Fatal(err)
		}
		overheadSum += tr.Overhead
		ar, err := prorace.AnalyzeWith(p, tr)
		if err != nil {
			log.Fatal(err)
		}
		hit := built.Detected(ar.Reports)
		if hit {
			detectedPro++
		}

		// RaceZ baseline on the same schedule seed.
		rz, err := prorace.Run(p,
			prorace.RaceZTraceOptions(period, seed, built.Workload.Machine),
			prorace.RaceZAnalysisOptions())
		if err != nil {
			log.Fatal(err)
		}
		if built.Detected(rz.AnalysisResult.Reports) {
			detectedRZ++
		}

		status := "missed"
		if hit {
			status = "DETECTED"
		}
		fmt.Printf("trace %2d: overhead %5.2f%%, %4d samples, %s\n",
			seed, tr.Overhead*100, tr.Trace.SampleCount(), status)
	}

	fmt.Printf("\nover %d production traces at period %d:\n", traces, period)
	fmt.Printf("  mean online overhead: %.2f%%\n", overheadSum/traces*100)
	fmt.Printf("  ProRace detected the race in %d/%d traces\n", detectedPro, traces)
	fmt.Printf("  RaceZ   detected the race in %d/%d traces\n", detectedRZ, traces)
}
