// Drivers: reproduce the paper's Figure 10 in miniature — the same
// workload traced through the stock Linux PEBS driver path and through
// ProRace's redesigned driver, across sampling periods. The gap is the
// paper's first contribution: eliminating per-sample metadata processing
// and kernel-to-user copying buys roughly an order of magnitude.
//
// Run with: go run ./examples/drivers
package main

import (
	"fmt"
	"log"

	"prorace"
)

func main() {
	w := prorace.MustWorkload("streamcluster", 1)
	fmt.Printf("workload: %s (%d threads, CPU-bound)\n\n", w.Name, w.Threads)
	fmt.Println("period    vanilla driver    prorace driver    samples(prorace)")

	for _, period := range []uint64{100000, 10000, 1000, 100, 10} {
		overhead := func(extra ...prorace.Option) (float64, int) {
			opts := append([]prorace.Option{
				prorace.WithMachine(w.Machine),
				prorace.WithPeriod(period),
				prorace.WithSeed(11),
				prorace.WithOverheadMeasurement(),
			}, extra...)
			tr, err := prorace.TraceWith(w.Program, opts...)
			if err != nil {
				log.Fatal(err)
			}
			return tr.Overhead, tr.Trace.SampleCount()
		}
		vo, _ := overhead(prorace.WithDriver(prorace.VanillaDriver), prorace.WithoutPT())
		po, samples := overhead()
		fmt.Printf("%-9d %12.1f%%    %12.1f%%    %8d\n", period, vo*100, po*100, samples)
	}

	fmt.Println("\nthe paper's anchors: ~50x vs ~7.5x at period 10; 20% vs 4% at 100K.")
}
