// Database: sweep the sampling period on the mysql application model to
// choose a production configuration — the sensitivity analysis of the
// paper's §7.2 — then inspect what the offline phase recovers at the
// chosen period.
//
// Run with: go run ./examples/database
package main

import (
	"fmt"
	"log"

	"prorace"
)

func main() {
	w := prorace.MustWorkload("mysql", 1)
	fmt.Printf("workload: %s (%d worker threads, %s-bound)\n\n", w.Name, w.Threads, w.Class)

	// Online sensitivity analysis: find the smallest sampling period that
	// fits a production overhead budget.
	const budget = 0.10 // 10%
	fmt.Println("period    overhead   samples   trace MB/s   within 10% budget?")
	var chosen uint64
	for _, period := range []uint64{100000, 10000, 1000, 100, 10} {
		tr, err := prorace.TraceWith(w.Program,
			prorace.WithMachine(w.Machine),
			prorace.WithPeriod(period),
			prorace.WithSeed(7),
			prorace.WithOverheadMeasurement(),
		)
		if err != nil {
			log.Fatal(err)
		}
		ok := tr.Overhead <= budget
		if ok {
			chosen = period
		}
		fmt.Printf("%-9d %7.2f%%  %8d   %8.1f     %v\n",
			period, tr.Overhead*100, tr.Trace.SampleCount(), tr.Trace.MBPerSecond(), ok)
	}
	fmt.Printf("\nchosen production period: %d\n\n", chosen)

	// Offline: one full analysis at the chosen period, with the three
	// reconstruction modes compared (the paper's Figure 11 view).
	tr, err := prorace.TraceWith(w.Program,
		prorace.WithMachine(w.Machine),
		prorace.WithPeriod(chosen),
		prorace.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []prorace.ReplayMode{
		prorace.ReplayBasicBlock, prorace.ReplayForward, prorace.ReplayForwardBackward,
	} {
		ar, err := prorace.AnalyzeWith(w.Program, tr, prorace.WithReplayMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %6d accesses (%5.1fx recovery)  analysis %8v  races %d\n",
			mode, ar.ReplayStats.Total(), ar.ReplayStats.RecoveryRatio(),
			ar.TotalTime().Round(1000), len(ar.Reports))
	}
	fmt.Println("\nmysql's base workload is race-free: zero reports expected.")
}
