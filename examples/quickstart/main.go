// Quickstart: build a small multithreaded program with a data race,
// trace it with ProRace's online phase (simulated PEBS + PT + sync log),
// and detect the race offline from the reconstructed memory trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prorace"
)

// buildRacyCounter assembles the classic bug: two threads increment a
// shared counter; one of them skips the lock.
func buildRacyCounter() (*prorace.Program, error) {
	b := prorace.NewProgram("quickstart")
	b.Global("counter", 8)
	b.Global("lk", 8)
	b.Global("tids", 16)

	m := b.Func("main")
	m.MovI(prorace.R4, 0)
	m.SpawnThread("locked_worker", prorace.R4)
	m.Store(prorace.MemGlobal("tids", 0), prorace.R0)
	m.MovI(prorace.R4, 1)
	m.SpawnThread("buggy_worker", prorace.R4)
	m.Store(prorace.MemGlobal("tids", 8), prorace.R0)
	m.Load(prorace.R0, prorace.MemGlobal("tids", 0))
	m.Join(prorace.R0)
	m.Load(prorace.R0, prorace.MemGlobal("tids", 8))
	m.Join(prorace.R0)
	m.Exit(0)

	// The disciplined worker: lock, increment, unlock.
	w := b.Func("locked_worker")
	w.MovI(prorace.R3, 400)
	w.Label("loop")
	w.Lock("lk")
	w.Load(prorace.R1, prorace.MemGlobal("counter", 0))
	w.AddI(prorace.R1, 1)
	w.Store(prorace.MemGlobal("counter", 0), prorace.R1)
	w.Unlock("lk")
	w.SubI(prorace.R3, 1)
	w.CmpI(prorace.R3, 0)
	w.Jgt("loop")
	w.Exit(0)

	// The buggy worker: same increment, no lock.
	v := b.Func("buggy_worker")
	v.MovI(prorace.R3, 400)
	v.Label("loop")
	v.Load(prorace.R1, prorace.MemGlobal("counter", 0))
	v.AddI(prorace.R1, 1)
	v.Store(prorace.MemGlobal("counter", 0), prorace.R1)
	v.SubI(prorace.R3, 1)
	v.CmpI(prorace.R3, 0)
	v.Jgt("loop")
	v.Exit(0)

	return b.Build()
}

func main() {
	p, err := buildRacyCounter()
	if err != nil {
		log.Fatal(err)
	}

	// Online: trace a production-like run at sampling period 1000 with the
	// ProRace driver, measuring the overhead against an untraced run.
	tr, err := prorace.TraceWith(p,
		prorace.WithMachine(prorace.MachineConfig{Cores: 4}),
		prorace.WithPeriod(1000),
		prorace.WithSeed(42),
		prorace.WithOverheadMeasurement(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online: %.3f ms of execution traced at %.2f%% overhead\n",
		tr.TracedStats.Seconds()*1e3, tr.Overhead*100)
	fmt.Printf("        %d PEBS samples, %d trace bytes, %d sync records\n",
		tr.Trace.SampleCount(), tr.Trace.TotalBytes(), len(tr.Trace.Sync))

	// Offline: decode PT, reconstruct unsampled accesses, run FastTrack.
	ar, err := prorace.AnalyzeWith(p, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d sampled + %d forward + %d backward accesses (%.1fx recovery)\n",
		ar.ReplayStats.Sampled, ar.ReplayStats.Forward, ar.ReplayStats.Backward,
		ar.ReplayStats.RecoveryRatio())
	fmt.Println()
	fmt.Print(prorace.FormatRaces(p, ar.Reports))
}
