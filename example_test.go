package prorace_test

import (
	"fmt"

	"prorace"
)

// Example demonstrates the full pipeline on a built-in workload: trace the
// apache model online with the ProRace driver, analyze offline, and
// inspect what was reconstructed.
func Example() {
	w := prorace.MustWorkload("apache", 1)
	res, err := prorace.Run(w.Program,
		prorace.ProRaceTraceOptions(10000, 1, w.Machine),
		prorace.DefaultAnalysisOptions())
	if err != nil {
		panic(err)
	}
	st := res.AnalysisResult.ReplayStats
	fmt.Println("workload:", w.Name)
	fmt.Println("races in the race-free base workload:", len(res.AnalysisResult.Reports))
	fmt.Println("reconstruction beat sampling:", st.Total() > st.Sampled)
	// Output:
	// workload: apache
	// races in the race-free base workload: 0
	// reconstruction beat sampling: true
}

// ExampleBugByID shows the Table 2 bug catalog: each entry carries the
// documented manifestation and the racy access's addressing mode.
func ExampleBugByID() {
	bug, err := prorace.BugByID("pfscan")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %s, %s access\n", bug.ID, bug.Manifestation, bug.Type)
	// Output:
	// pfscan: infinite loop, pc relative access
}

// ExampleNewProgram assembles a custom program through the facade and
// validates it.
func ExampleNewProgram() {
	b := prorace.NewProgram("demo")
	b.Global("x", 8)
	m := b.Func("main")
	m.Load(prorace.R1, prorace.MemGlobal("x", 0))
	m.AddI(prorace.R1, 1)
	m.Store(prorace.MemGlobal("x", 0), prorace.R1)
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", len(p.Insts))
	fmt.Println("entry symbol:", p.SymbolizeAddr(p.Entry))
	// Output:
	// instructions: 5
	// entry symbol: main
}
