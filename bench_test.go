package prorace

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§7) plus ablations of the design decisions DESIGN.md calls
// out. Each per-artifact benchmark runs the corresponding experiment on a
// representative subset (for speed) and reports the headline series via
// b.ReportMetric, so `go test -bench=.` prints the same rows the paper
// reports; `go run ./cmd/experiments -full` regenerates the complete
// artifacts.

import (
	"fmt"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/experiments"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/ptdecode"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

// benchConfig returns a reduced experiment configuration sized for
// benchmarking: a representative workload per class and three periods.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Periods = []uint64{100, 1000, 10000}
	cfg.Workloads = []string{
		"blackscholes", "canneal", "streamcluster", // PARSEC: compute/pointer/stream
		"apache", "mysql", "pbzip2", // real: net/mixed/cpu
	}
	cfg.BugSubset = []string{"apache-21287", "mysql-3596", "pfscan"}
	cfg.Table2Trials = 5
	return cfg
}

// BenchmarkTable1 regenerates the evaluation-setup table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1(1) == "" {
			b.Fatal("empty table")
		}
	}
}

func reportOverheadSeries(b *testing.B, fig interface {
	Render() string
}, periods []uint64, geomean []float64) {
	for i, p := range periods {
		b.ReportMetric(geomean[i]*100, fmt.Sprintf("ovh%%@P=%d", p))
	}
	if fig.Render() == "" {
		b.Fatal("empty render")
	}
}

// BenchmarkFigure6 regenerates the PARSEC overhead series (paper: 4%, 7%,
// 13%, 2.85x, 7.52x for periods 100K..10).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		fig, err := h.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		reportOverheadSeries(b, fig, fig.Periods, fig.Geomean)
	}
}

// BenchmarkFigure7 regenerates the real-application overhead series
// (paper: 0.8%, 2.6%, 8%, 34%, 80%).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		fig, err := h.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		reportOverheadSeries(b, fig, fig.Periods, fig.Geomean)
	}
}

// BenchmarkFigure8 regenerates the PARSEC trace-rate series (paper: 26,
// 69, 132, 597, 463 MB/s — with the period-10 inversion from drops).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		fig, err := h.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range fig.Periods {
			b.ReportMetric(fig.Geomean[j], fmt.Sprintf("MB/s@P=%d", p))
		}
	}
}

// BenchmarkFigure9 regenerates the real-application trace-rate series
// (paper: 0.2, 1.2, 7.9, 40.8, 99.5 MB/s).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		fig, err := h.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range fig.Periods {
			b.ReportMetric(fig.Geomean[j], fmt.Sprintf("MB/s@P=%d", p))
		}
	}
}

// BenchmarkFigure10 regenerates the driver comparison (paper anchors: 50x
// vanilla vs 7.5x ProRace at period 10; 20% vs 4% at 100K).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		fig, err := h.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range fig.Periods {
			b.ReportMetric(fig.ParsecVanilla[j]*100, fmt.Sprintf("vanilla%%@P=%d", p))
			b.ReportMetric(fig.ParsecProRace[j]*100, fmt.Sprintf("prorace%%@P=%d", p))
		}
	}
}

// BenchmarkTable2 regenerates the detection-probability table (paper:
// ProRace 27.5% average at 10K vs RaceZ 0.2%; PC-relative bugs at 100%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		res, err := h.Table2()
		if err != nil {
			b.Fatal(err)
		}
		avgP, avgZ := res.Average("prorace"), res.Average("racez")
		for _, p := range res.Periods {
			b.ReportMetric(avgP[p]*100, fmt.Sprintf("prorace%%@P=%d", p))
			b.ReportMetric(avgZ[p]*100, fmt.Sprintf("racez%%@P=%d", p))
		}
	}
}

// BenchmarkFigure11 regenerates the memory-recovery-ratio comparison
// (paper: basic-block ~5.4x, forward ~34x, forward+backward ~64x).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		res, err := h.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgBB, "x_basicblock")
		b.ReportMetric(res.AvgFwd, "x_forward")
		b.ReportMetric(res.AvgFB, "x_fwd+bwd")
	}
}

// BenchmarkFigure12 regenerates the offline-analysis-cost breakdown
// (paper: decode 33.7%, reconstruction 64.7%, detection 1.6%).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchConfig())
		res, err := h.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DecodeFrac*100, "decode%")
		b.ReportMetric(res.ReconstructFrac*100, "reconstruct%")
		b.ReportMetric(res.DetectFrac*100, "detect%")
	}
}

// --- Ablations of DESIGN.md §5's design decisions ---

// benchWorkload is a small CPU-bound program for driver ablations.
func ablationWorkload() workload.Workload { return workload.PARSEC(1)[0] }

func measureOverhead(b *testing.B, w workload.Workload, costs *driver.Costs) float64 {
	b.Helper()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true,
		MeasureOverhead: true, Machine: w.Machine, Costs: costs,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Overhead
}

// BenchmarkAblationDriverMetadataSkip isolates the ProRace driver's
// metadata-processing elimination: re-enabling the vanilla per-sample
// kernel work on the otherwise-ProRace stack.
func BenchmarkAblationDriverMetadataSkip(b *testing.B) {
	w := ablationWorkload()
	for i := 0; i < b.N; i++ {
		with := measureOverhead(b, w, nil)
		costs := driver.DefaultCosts(driver.ProRace)
		costs.PerSampleKernel = driver.DefaultCosts(driver.Vanilla).PerSampleKernel
		without := measureOverhead(b, w, &costs)
		b.ReportMetric(with*100, "skip_on_ovh%")
		b.ReportMetric(without*100, "skip_off_ovh%")
	}
}

// BenchmarkAblationDriverCopyElimination isolates the kernel-to-user copy
// elimination of the single aux-buffer design.
func BenchmarkAblationDriverCopyElimination(b *testing.B) {
	w := ablationWorkload()
	for i := 0; i < b.N; i++ {
		with := measureOverhead(b, w, nil)
		costs := driver.DefaultCosts(driver.ProRace)
		costs.CopyPerByte = driver.DefaultCosts(driver.Vanilla).CopyPerByte
		without := measureOverhead(b, w, &costs)
		b.ReportMetric(with*100, "nocopy_on_ovh%")
		b.ReportMetric(without*100, "nocopy_off_ovh%")
	}
}

// BenchmarkAblationRandomPhase measures the sampling-diversity feature:
// detection probability of a Table 2 bug with and without the randomised
// first sampling period.
func BenchmarkAblationRandomPhase(b *testing.B) {
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		b.Fatal(err)
	}
	built := bug.Build(1)
	for i := 0; i < b.N; i++ {
		count := func(disable bool) int {
			hits := 0
			for seed := int64(1); seed <= 8; seed++ {
				res, err := core.Run(built.Workload.Program,
					core.TraceOptions{Kind: driver.ProRace, Period: 1000, Seed: seed,
						EnablePT: true, Machine: built.Workload.Machine,
						DisableRandomFirstPeriod: disable},
					core.AnalysisOptions{Mode: replay.ModeForwardBackward})
				if err != nil {
					b.Fatal(err)
				}
				if built.Detected(res.AnalysisResult.Reports) {
					hits++
				}
			}
			return hits
		}
		b.ReportMetric(float64(count(false))/8*100, "random%")
		b.ReportMetric(float64(count(true))/8*100, "fixed%")
	}
}

// BenchmarkAblationMemoryEmulation measures the §5.1 program-map memory
// emulation's contribution to recovery.
func BenchmarkAblationMemoryEmulation(b *testing.B) {
	w := workload.MySQL(1)
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 10000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		with, err := core.Analyze(w.Program, tr.Trace, core.AnalysisOptions{Mode: replay.ModeForwardBackward})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Analyze(w.Program, tr.Trace, core.AnalysisOptions{
			Mode: replay.ModeForwardBackward, DisableMemoryEmulation: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.ReplayStats.RecoveryRatio(), "x_with_mem")
		b.ReportMetric(without.ReplayStats.RecoveryRatio(), "x_without_mem")
	}
}

// BenchmarkAblationAllocationTracking shows the §4.3 address-reuse false
// positive appearing when malloc/free generation tracking is disabled.
func BenchmarkAblationAllocationTracking(b *testing.B) {
	// A workload where one thread frees an object and another reuses the
	// address: see race package tests for the unit-level version; here the
	// full pipeline runs on a synthetic reuse workload.
	p := buildReuseWorkload()
	for i := 0; i < b.N; i++ {
		with, err := core.Run(p,
			core.TraceOptions{Kind: driver.ProRace, Period: 50, Seed: 2, EnablePT: true},
			core.AnalysisOptions{Mode: replay.ModeForwardBackward})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Run(p,
			core.TraceOptions{Kind: driver.ProRace, Period: 50, Seed: 2, EnablePT: true},
			core.AnalysisOptions{Mode: replay.ModeForwardBackward, DisableAllocationTracking: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(with.AnalysisResult.Reports)), "races_tracked")
		b.ReportMetric(float64(len(without.AnalysisResult.Reports)), "races_untracked")
	}
}

// buildReuseWorkload: thread 1 writes an object then frees it; thread 2
// mallocs (reusing the address) and writes. Join edges order everything:
// the only "race" a detector can report is the address-reuse false
// positive.
func buildReuseWorkload() *Program {
	b := NewProgram("reuse")
	b.Global("tids", 16)
	m := b.Func("main")
	m.MovI(R4, 0)
	m.SpawnThread("first", R4)
	m.Store(MemGlobal("tids", 0), R0)
	m.MovI(R4, 1)
	m.SpawnThread("second", R4)
	m.Store(MemGlobal("tids", 8), R0)
	m.Load(R0, MemGlobal("tids", 0))
	m.Join(R0)
	m.Load(R0, MemGlobal("tids", 8))
	m.Join(R0)
	m.Exit(0)
	// first: allocate, write, free — all early in the run.
	f1 := b.Func("first")
	f1.MovI(R0, 64)
	f1.Syscall(isa.SysMalloc)
	f1.Mov(R9, R0)
	f1.MovI(R3, 40)
	f1.Label("w")
	f1.Store(MemBase(R9, 8), R3)
	f1.SubI(R3, 1)
	f1.CmpI(R3, 0)
	f1.Jgt("w")
	f1.Mov(R0, R9)
	f1.Syscall(isa.SysFree)
	f1.Exit(0)
	// second: spin first, so its malloc (concurrent with first, no HB
	// edge between them) reuses the freed address, then write — the §4.3
	// address-reuse scenario.
	f2 := b.Func("second")
	f2.MovI(R3, 3000)
	f2.Label("spin")
	f2.SubI(R3, 1)
	f2.CmpI(R3, 0)
	f2.Jgt("spin")
	f2.MovI(R0, 64)
	f2.Syscall(isa.SysMalloc) // reuses the freed address
	f2.Mov(R9, R0)
	f2.MovI(R3, 40)
	f2.Label("w")
	f2.Store(MemBase(R9, 8), R3)
	f2.SubI(R3, 1)
	f2.CmpI(R3, 0)
	f2.Jgt("w")
	f2.Exit(0)
	return mustBuild(b)
}

// BenchmarkAblationPTGuidance compares reconstruction with the PT path
// (forward replay across basic blocks) against the blockbound baseline —
// the value of control-flow tracing itself.
func BenchmarkAblationPTGuidance(b *testing.B) {
	w := workload.Apache(1)
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 10000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		guided, err := core.Analyze(w.Program, tr.Trace, core.AnalysisOptions{Mode: replay.ModeForward})
		if err != nil {
			b.Fatal(err)
		}
		blockbound, err := core.Analyze(w.Program, tr.Trace, core.AnalysisOptions{Mode: replay.ModeBasicBlock})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(guided.ReplayStats.RecoveryRatio(), "x_pt_guided")
		b.ReportMetric(blockbound.ReplayStats.RecoveryRatio(), "x_blockbound")
	}
}

// --- Microbenchmarks of the substrate ---

// BenchmarkMachineExecution measures raw simulation throughput.
func BenchmarkMachineExecution(b *testing.B) {
	w := ablationWorkload()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		cfg := w.Machine
		cfg.Seed = int64(i)
		m := machine.New(w.Program, cfg)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		retired = st.Retired
	}
	b.ReportMetric(float64(retired), "instructions/op")
}

// BenchmarkOnlineTracing measures the full online phase (machine + driver).
func BenchmarkOnlineTracing(b *testing.B) {
	w := ablationWorkload()
	for i := 0; i < b.N; i++ {
		_, err := core.TraceProgram(w.Program, core.TraceOptions{
			Kind: driver.ProRace, Period: 1000, Seed: int64(i), EnablePT: true, Machine: w.Machine})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPTDecode measures path reconstruction throughput.
func BenchmarkPTDecode(b *testing.B) {
	w := ablationWorkload()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		paths, err := ptdecode.DecodeAll(w.Program, res.Trace.PT, 0)
		if err != nil {
			b.Fatal(err)
		}
		steps = 0
		for _, p := range paths {
			steps += p.Len()
		}
	}
	b.ReportMetric(float64(steps), "steps/op")
}

// BenchmarkReplayForwardBackward measures the reconstruction engine.
func BenchmarkReplayForwardBackward(b *testing.B) {
	w := ablationWorkload()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	engine := replay.NewEngine(w.Program, replay.Config{Mode: replay.ModeForwardBackward})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := engine.ReconstructAll(tts)
		if st.Total() == 0 {
			b.Fatal("nothing reconstructed")
		}
	}
}

// BenchmarkFastTrackDetection measures the detector over a prepared
// extended trace.
func BenchmarkFastTrackDetection(b *testing.B) {
	w := ablationWorkload()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	engine := replay.NewEngine(w.Program, replay.Config{Mode: replay.ModeForwardBackward})
	accesses, _ := engine.ReconstructAll(tts)
	n := 0
	for _, a := range accesses {
		n += len(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := race.Detect(res.Trace.Sync, accesses, race.Options{TrackAllocations: true})
		_ = d.Reports()
	}
	b.ReportMetric(float64(n), "accesses/op")
}

// BenchmarkTraceEncodeDecode measures the trace container round trip.
func BenchmarkTraceEncodeDecode(b *testing.B) {
	w := ablationWorkload()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 100, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.Trace.Encode())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := res.Trace.Encode()
		if _, err := tracefmt.DecodeTrace(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelatedWork regenerates the §2 comparison across LiteRace,
// Pacer, DataCollider, RaceZ and ProRace (paper anchors: LiteRace 1.47x,
// Pacer 1.86x at 3%, DataCollider low overhead/low coverage).
func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Workloads = []string{"streamcluster"}
		cfg.Table2Trials = 4
		h := experiments.NewHarness(cfg)
		res, err := h.RelatedWork()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.CPUOverhead*100, row.System+"_cpu%")
			b.ReportMetric(row.Detection*100, row.System+"_det%")
		}
	}
}

// BenchmarkParallelAnalysis measures the §7.6 parallelisation of the
// offline phase: sequential vs worker-pool decode+reconstruction on the
// 20-thread mysql trace.
func BenchmarkParallelAnalysis(b *testing.B) {
	w := workload.MySQL(1)
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	run := func(opts core.AnalysisOptions) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(w.Program, tr.Trace, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", run(core.AnalysisOptions{Mode: replay.ModeForwardBackward}))
	b.Run("workers", run(core.AnalysisOptions{Mode: replay.ModeForwardBackward, Workers: -1}))
	b.Run("workers+shards", run(core.AnalysisOptions{
		Mode: replay.ModeForwardBackward, Workers: -1, DetectShards: -1}))
}

// benchAnalyzeTelemetry is the shared body of the telemetry cost pair:
// one full analysis per iteration over a fixed mysql trace.
func benchAnalyzeTelemetry(b *testing.B, opts core.AnalysisOptions) {
	w := workload.MySQL(1)
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(w.Program, tr.Trace, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeTelemetryOff is the disabled-telemetry baseline: nil
// registry, nil metric handles, zero extra allocations on the hot paths
// (the contract the AllocsPerRun guards in internal/replay and
// internal/race enforce). Compare against BenchmarkAnalyzeTelemetryOn to
// price the observability; cmd/experiments -exp perf records the pair to
// the BENCH json artifact.
func BenchmarkAnalyzeTelemetryOff(b *testing.B) {
	benchAnalyzeTelemetry(b, core.AnalysisOptions{Mode: replay.ModeForwardBackward})
}

// BenchmarkAnalyzeTelemetryOn runs the same analysis publishing into a
// live registry: per-thread counter batches, stage spans, and one snapshot
// per analysis.
func BenchmarkAnalyzeTelemetryOn(b *testing.B) {
	benchAnalyzeTelemetry(b, core.AnalysisOptions{
		Mode: replay.ModeForwardBackward, Telemetry: telemetry.New()})
}

// BenchmarkShardedDetection measures address-sharded parallel FastTrack
// against the sequential detector over the same prepared extended trace.
// The reported race list is identical at every shard count (the
// equivalence suite enforces it), so the series isolates the detect
// phase's scaling.
func BenchmarkShardedDetection(b *testing.B) {
	w := workload.MySQL(1)
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	engine := replay.NewEngine(w.Program, replay.Config{Mode: replay.ModeForwardBackward})
	accesses, _ := engine.ReconstructAll(tts)
	n := 0
	for _, a := range accesses {
		n += len(a)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.Detect(res.Trace.Sync, accesses, race.Options{TrackAllocations: true})
		}
		b.ReportMetric(float64(n), "accesses/op")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				race.DetectSharded(res.Trace.Sync, accesses, shards, race.Options{TrackAllocations: true})
			}
			b.ReportMetric(float64(n), "accesses/op")
		})
	}
}

// BenchmarkDetectorFastTrackVsDjit compares FastTrack's adaptive-epoch
// detector against the full-vector-clock DJIT+ it improves upon, over the
// same extended trace — the detector-level justification for the paper's
// choice of algorithm.
func BenchmarkDetectorFastTrackVsDjit(b *testing.B) {
	w := ablationWorkload()
	res, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 3, EnablePT: true, Machine: w.Machine})
	if err != nil {
		b.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	engine := replay.NewEngine(w.Program, replay.Config{Mode: replay.ModeForwardBackward})
	accesses, _ := engine.ReconstructAll(tts)
	b.Run("fasttrack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.Detect(res.Trace.Sync, accesses, race.Options{TrackAllocations: true})
		}
	})
	b.Run("djit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.DetectDjit(res.Trace.Sync, accesses, race.Options{TrackAllocations: true})
		}
	})
}
