package prorace

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade the way the README's
// quickstart does: built-in workload, trace, analyze, format.
func TestPublicAPIQuickstart(t *testing.T) {
	w := MustWorkload("apache", 1)
	topts := ProRaceTraceOptions(1000, 42, w.Machine)
	topts.MeasureOverhead = true
	tr, err := Trace(w.Program, topts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Trace.SampleCount() == 0 {
		t.Fatal("no samples")
	}
	ar, err := Analyze(w.Program, tr, DefaultAnalysisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ar.ReplayStats.RecoveryRatio() <= 1 {
		t.Errorf("recovery ratio %v", ar.ReplayStats.RecoveryRatio())
	}
	if out := FormatRaces(w.Program, ar.Reports); out == "" {
		t.Error("empty format")
	}
}

func TestPublicAPICustomProgram(t *testing.T) {
	// Build a custom racy program purely through the facade.
	b := NewProgram("custom")
	b.Global("x", 8)
	b.Global("tids", 16)
	m := b.Func("main")
	for i := int64(0); i < 2; i++ {
		m.MovI(R4, i)
		m.SpawnThread("w", R4)
		m.Store(MemGlobal("tids", i*8), R0)
	}
	for i := int64(0); i < 2; i++ {
		m.Load(R0, MemGlobal("tids", i*8))
		m.Join(R0)
	}
	m.Exit(0)
	f := b.Func("w")
	f.MovI(R3, 150)
	f.Label("l")
	f.Load(R1, MemGlobal("x", 0))
	f.AddI(R1, 1)
	f.Store(MemGlobal("x", 0), R1)
	f.SubI(R3, 1)
	f.CmpI(R3, 0)
	f.Jgt("l")
	f.Exit(0)
	p := mustBuild(b)

	res, err := Run(p, ProRaceTraceOptions(500, 3, MachineConfig{Cores: 4}), DefaultAnalysisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AnalysisResult.Reports) == 0 {
		t.Fatal("unlocked shared counter must race")
	}
	out := FormatRace(p, res.AnalysisResult.Reports[0])
	if !strings.Contains(out, "x") {
		t.Errorf("report not symbolised: %s", out)
	}
}

func TestPublicAPIWorkloadCatalog(t *testing.T) {
	if len(Workloads(1)) != 21 || len(PARSEC(1)) != 13 || len(RealApps(1)) != 8 {
		t.Error("catalog sizes wrong")
	}
	if len(WorkloadNames()) != 21 {
		t.Error("names wrong")
	}
	if _, err := WorkloadByName("nosuch", 1); err == nil {
		t.Error("unknown workload must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload must panic on unknown name")
		}
	}()
	MustWorkload("nosuch", 1)
}

func TestPublicAPIBugCatalog(t *testing.T) {
	if len(Bugs()) != 12 {
		t.Error("bug catalog wrong")
	}
	bug, err := BugByID("aget-bug2")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	if len(built.RacyPCs) != 2 {
		t.Error("ground truth missing")
	}
	res, err := Run(built.Workload.Program,
		ProRaceTraceOptions(1000, 5, built.Workload.Machine),
		DefaultAnalysisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !built.Detected(res.AnalysisResult.Reports) {
		t.Error("pc-relative bug not detected")
	}
}

func TestPublicAPIRaceZPreset(t *testing.T) {
	w := MustWorkload("apache", 1)
	res, err := Run(w.Program, RaceZTraceOptions(500, 3, w.Machine), RaceZAnalysisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalysisResult.ReplayStats.Forward != 0 {
		t.Error("RaceZ preset ran path-guided replay")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	cfg := QuickExperiments()
	cfg.Workloads = []string{"apache"}
	cfg.Periods = []uint64{10000}
	h := NewExperiments(cfg)
	fig, err := h.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PerWorkload) != 1 {
		t.Error("experiment subset failed")
	}
	if FullExperiments().Table2Trials != 100 {
		t.Error("full config wrong")
	}
}

// TestPublicAPIFunctionalOptions exercises the options.go surface: the
// defaults, every constructor's field mapping, and the RunWith pipeline
// with parallel analysis enabled.
func TestPublicAPIFunctionalOptions(t *testing.T) {
	topts, aopts := NewOptions()
	if topts.Kind != ProRaceDriver || !topts.EnablePT || topts.Period != 10000 || topts.Seed != 1 {
		t.Errorf("trace defaults wrong: %+v", topts)
	}
	if aopts.Mode != ReplayForwardBackward || aopts.Workers != 0 || aopts.DetectShards != 0 {
		t.Errorf("analysis defaults wrong: %+v", aopts)
	}

	costs := DriverCosts{}
	topts, aopts = NewOptions(
		WithMachine(MachineConfig{Cores: 6}),
		WithPeriod(500),
		WithSeed(9),
		WithDriver(VanillaDriver),
		WithDriverCosts(costs),
		WithoutPT(),
		WithOverheadMeasurement(),
		WithoutRandomFirstPeriod(),
		WithReplayMode(ReplayForward),
		WithWorkers(4),
		WithDetectShards(8),
		WithMaxReports(17),
		WithoutMemoryEmulation(),
		WithoutRaceFeedback(),
		WithoutAllocationTracking(),
	)
	if topts.Machine.Cores != 6 || topts.Period != 500 || topts.Seed != 9 ||
		topts.Kind != VanillaDriver || topts.Costs == nil || topts.EnablePT ||
		!topts.MeasureOverhead || !topts.DisableRandomFirstPeriod {
		t.Errorf("trace options wrong: %+v", topts)
	}
	if aopts.Mode != ReplayForward || aopts.Workers != 4 || aopts.DetectShards != 8 ||
		aopts.MaxReports != 17 || !aopts.DisableMemoryEmulation ||
		!aopts.DisableRaceFeedback || !aopts.DisableAllocationTracking {
		t.Errorf("analysis options wrong: %+v", aopts)
	}

	w := MustWorkload("apache", 1)
	res, err := RunWith(w.Program,
		WithMachine(w.Machine),
		WithPeriod(1000),
		WithSeed(42),
		WithWorkers(-1),
		WithDetectShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalysisResult.ReplayStats.Total() == 0 {
		t.Fatal("parallel RunWith produced nothing")
	}
	if res.AnalysisResult.Workers < 1 || res.AnalysisResult.DetectShards != 4 {
		t.Errorf("resolved parallelism not recorded: %+v", res.AnalysisResult)
	}

	// TraceWith + AnalyzeWith compose to the same pipeline.
	tr, err := TraceWith(w.Program, WithMachine(w.Machine), WithPeriod(1000), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := AnalyzeWith(w.Program, tr, WithDetectShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Reports) != len(res.AnalysisResult.Reports) {
		t.Errorf("composed pipeline diverged: %d vs %d reports", len(ar.Reports), len(res.AnalysisResult.Reports))
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *Builder) *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
