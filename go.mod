module prorace

go 1.22
