package prorace

// End-to-end observability tests: the live /metrics scrape during an
// analysis (ISSUE 5's acceptance check), the snapshot attached to
// AnalysisResult, the determinism of pipeline-derived series, and the
// timeline artifact produced by a whole run.

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// scrapeFamilies fetches /metrics and returns the distinct prorace_*
// family names (labels stripped, histogram suffixes reduced to the base).
func scrapeFamilies(t *testing.T, addr string) map[string]bool {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	fams := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "prorace_") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		fams[name] = true
	}
	return fams
}

// TestTelemetryLiveScrape runs the full pipeline with telemetry and an
// ephemeral HTTP listener, scraping /metrics while analyses are running.
// It asserts the acceptance bar: at least 20 distinct prorace_* series
// spanning the driver, decode, replay and detection stages.
func TestTelemetryLiveScrape(t *testing.T) {
	reg := NewTelemetry()
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w := MustWorkload("pfscan", 1)
	done := make(chan error, 1)
	go func() {
		var ferr error
		for trial := 0; trial < 3 && ferr == nil; trial++ {
			_, ferr = RunWith(w.Program,
				WithMachine(w.Machine),
				WithPeriod(500),
				WithSeed(int64(trial+1)),
				WithDetectShards(2),
				WithTelemetry(reg),
			)
		}
		done <- ferr
	}()

	// Scrape while the run loop is alive; the endpoint must serve
	// consistent text at any point, not only after the runs finish.
	deadline := time.Now().Add(30 * time.Second)
	var fams map[string]bool
	for {
		fams = scrapeFamilies(t, srv.Addr())
		if len(fams) >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 20 series; got %d: %v", len(fams), sorted(fams))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	fams = scrapeFamilies(t, srv.Addr())
	if len(fams) < 20 {
		t.Errorf("final scrape has %d distinct prorace_* series, want >= 20: %v", len(fams), sorted(fams))
	}
	for _, stage := range []string{"prorace_driver_", "prorace_ptdecode_", "prorace_replay_", "prorace_detect_"} {
		found := false
		for f := range fams {
			if strings.HasPrefix(f, stage) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series in scrape: %v", stage, sorted(fams))
		}
	}
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestTelemetrySnapshotInResult: the analysis attaches the registry's
// snapshot, and without telemetry the field stays nil.
func TestTelemetrySnapshotInResult(t *testing.T) {
	w := MustWorkload("pfscan", 1)
	reg := NewTelemetry()
	res, err := RunWith(w.Program, WithMachine(w.Machine), WithPeriod(1000), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.AnalysisResult.Telemetry
	if snap == nil {
		t.Fatal("AnalysisResult.Telemetry is nil with telemetry enabled")
	}
	if snap.Counter("prorace_analysis_runs_total") != 1 {
		t.Errorf("analysis runs = %d, want 1", snap.Counter("prorace_analysis_runs_total"))
	}
	if got, want := snap.Counter("prorace_replay_accesses_sampled_total"), uint64(res.AnalysisResult.ReplayStats.Sampled); got != want {
		t.Errorf("sampled counter = %d, ReplayStats.Sampled = %d", got, want)
	}
	if len(snap.Spans) == 0 {
		t.Error("snapshot carries no stage spans")
	}

	plain, err := RunWith(w.Program, WithMachine(w.Machine), WithPeriod(1000))
	if err != nil {
		t.Fatal(err)
	}
	if plain.AnalysisResult.Telemetry != nil {
		t.Error("AnalysisResult.Telemetry must be nil when telemetry is off")
	}
}

// TestTelemetryDeterministic: the pipeline-derived counters are identical
// across repeated runs of one (program, seed) and across performance
// configurations, once the wall-clock series (histograms, spans) and the
// scheduling-dependent queue depth are excluded. The path cache is off so
// every run publishes the full decode series (a cache hit honestly
// publishes only the hit counter — that asymmetry is the documented
// cache-hit semantics, not nondeterminism).
func TestTelemetryDeterministic(t *testing.T) {
	w := MustWorkload("pfscan", 1)
	counters := func(opts ...Option) map[string]uint64 {
		reg := NewTelemetry()
		_, err := RunWith(w.Program, append(opts,
			WithMachine(w.Machine), WithPeriod(500), WithSeed(7),
			WithoutPathCache(), WithTelemetry(reg))...)
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters
	}
	base := counters()
	again := counters()
	if !reflect.DeepEqual(base, again) {
		t.Errorf("same-config counters differ:\n%v\nvs\n%v", base, again)
	}
	sharded := counters(WithDetectShards(4))
	for _, name := range []string{
		"prorace_driver_samples_emitted_total",
		"prorace_ptdecode_packets_total",
		"prorace_replay_accesses_forward_total",
		"prorace_detect_access_events_total",
		"prorace_detect_read_share_inflations_total",
		"prorace_detect_reports_total",
	} {
		if base[name] != sharded[name] {
			t.Errorf("%s: sequential %d vs sharded %d", name, base[name], sharded[name])
		}
	}
}

// TestTelemetryTimelineArtifact: a full pipeline run produces a
// structurally valid chrome://tracing document with the expected stage
// hierarchy.
func TestTelemetryTimelineArtifact(t *testing.T) {
	w := MustWorkload("pfscan", 1)
	reg := NewTelemetry()
	if _, err := RunWith(w.Program, WithMachine(w.Machine), WithPeriod(1000),
		WithWorkers(2), WithTelemetry(reg)); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Ts < 0 || e.Dur < 0 {
			t.Errorf("malformed event %+v", e)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"trace", "analyze", "decode+synthesis", "reconstruct+detect"} {
		if !names[want] {
			t.Errorf("timeline missing stage span %q (have %v)", want, sorted(names))
		}
	}
	// The workers=2 pass adds per-thread reconstruction lanes.
	lanes := 0
	for n := range names {
		if strings.HasPrefix(n, "reconstruct t") {
			lanes++
		}
	}
	if lanes == 0 {
		t.Error("no per-thread reconstruction lanes in the timeline")
	}
}
