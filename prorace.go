// Package prorace is a from-scratch reproduction of "ProRace: Practical
// Data Race Detection for Production Use" (Zhang, Jung, Lee — ASPLOS 2017):
// a sampling-based dynamic data race detector whose online phase traces a
// program with near-zero overhead using the hardware PMU (PEBS memory-access
// samples plus a PT control-flow trace and a synchronization log), and whose
// offline phase reconstructs unsampled memory accesses by replaying the
// binary forwards and backwards around each sample before running FastTrack
// happens-before detection on the extended trace.
//
// Because raw PEBS/PT hardware is not accessible (or portable) from Go, the
// reproduction runs on a deterministic simulated multicore machine executing
// a small RISC-style ISA with x86-like addressing modes; every layer the
// paper depends on — the PMU, the two kernel driver designs it compares,
// the perf tool, the LD_PRELOAD synchronization shim, the PT decoder, the
// replay engine, and the detector — is implemented in this module. See
// DESIGN.md for the substitution table and EXPERIMENTS.md for
// paper-vs-measured results of every table and figure.
//
// # Quick start
//
//	w := prorace.MustWorkload("apache", 1)
//	res, err := prorace.RunWith(w.Program, prorace.WithMachine(w.Machine))
//	if err != nil { ... }
//	fmt.Print(prorace.FormatRaces(w.Program, res.AnalysisResult.Reports))
//
// The pipeline is configured with functional options (options.go):
// WithPeriod, WithSeed, WithReplayMode, WithWorkers, WithDetectShards and
// friends; WithWorkers fans the offline phase out across a worker pool and
// WithDetectShards runs address-sharded parallel FastTrack detection with
// race reports identical to the sequential detector.
//
// Custom programs are assembled with NewProgram (see the builder aliases
// below) and run through the same pipeline; examples/ contains three
// complete programs.
//
// # Determinism
//
// The pipeline is deterministic end to end, and the guarantees are
// continuously enforced, not aspirational:
//
//   - online: a (program, seed) pair reproduces the traced execution
//     exactly — same interleaving, same samples, same trace bytes;
//   - offline: for a given trace, the reported race set is byte-identical
//     across every performance configuration — any WithWorkers count, any
//     WithDetectShards count, path cache on or off — and WithStrict equals
//     the lenient default whenever the trace decodes cleanly.
//
// internal/oracle checks these invariants differentially: it generates
// random concurrent programs, records every memory access of the traced
// execution, computes the exact happens-before race set with a
// pair-complete detector, and requires the pipeline to report zero false
// positives at any period, every racy address at period=1, and identical
// reports across the configuration matrix. Run it with
//
//	go run ./cmd/experiments -exp oracle        # quick differential sweep
//	go run ./cmd/experiments -exp oracle -soak  # 200-seed soak
package prorace

import (
	"prorace/internal/asm"
	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/experiments"
	"prorace/internal/faultinject"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/racez"
	"prorace/internal/replay"
	"prorace/internal/report"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/witness"
	"prorace/internal/workload"
)

// Core pipeline types.
type (
	// Program is an executable image for the simulated machine.
	Program = prog.Program
	// MachineConfig parameterises the simulated machine.
	MachineConfig = machine.Config
	// TraceOptions configures the online tracing phase.
	TraceOptions = core.TraceOptions
	// TraceResult is the online phase's outcome.
	TraceResult = core.TraceResult
	// AnalysisOptions configures the offline phase.
	AnalysisOptions = core.AnalysisOptions
	// AnalysisResult is the offline phase's outcome.
	AnalysisResult = core.AnalysisResult
	// Analyzer is a stateful, segment-resumable analysis session: Feed it
	// trace segments as they arrive, Snapshot it at any point, Finish it to
	// seal the run (see NewAnalyzer / NewAnalyzerWith). Feeding a trace in
	// any number of segments yields reports byte-identical to one-shot
	// Analyze.
	Analyzer = core.Analyzer
	// TraceSegment is a contiguous chunk of one run's trace streams, as
	// produced by Trace.Split and consumed by Analyzer.Feed.
	TraceSegment = tracefmt.Trace
	// Result bundles a full pipeline run.
	Result = core.Result
	// Report is one detected data race.
	Report = race.Report
	// Degradation summarises everything a lenient analysis had to give up.
	Degradation = core.Degradation
	// ThreadError is one thread's isolated analysis failure.
	ThreadError = core.ThreadError
	// FaultSpec describes a deterministic set of trace faults to inject
	// before analysis (robustness testing).
	FaultSpec = faultinject.Spec
	// PathCache memoizes decoded PT paths across analyses of one trace
	// (see NewPathCache / WithPathCache).
	PathCache = synthesis.Cache
	// DriverKind selects the vanilla or ProRace PEBS driver model.
	DriverKind = driver.Kind
	// DriverCosts is a driver stack's cycle-cost model.
	DriverCosts = driver.Costs
	// ReplayMode selects the reconstruction algorithm.
	ReplayMode = replay.Mode
	// Workload is a runnable benchmark program.
	Workload = workload.Workload
	// Bug describes one of Table 2's planted races.
	Bug = bugs.Bug
	// BuiltBug is a constructed bug workload with ground truth.
	BuiltBug = bugs.Built
	// ExperimentConfig sizes the evaluation harness.
	ExperimentConfig = experiments.Config
	// Experiments regenerates the paper's tables and figures.
	Experiments = experiments.Harness
	// Telemetry is a metrics registry capturing the pipeline's counters,
	// gauges, histograms and stage spans (see NewTelemetry/WithTelemetry).
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a frozen view of a Telemetry registry, attached
	// to AnalysisResult.Telemetry when telemetry is enabled.
	TelemetrySnapshot = telemetry.Snapshot
	// MetricsServer is a live telemetry HTTP listener (see ServeMetrics).
	MetricsServer = telemetry.Server
	// Witness is a deterministic reproduction recipe for one race report:
	// program identity, machine configuration, optional PMU driver, the
	// expected racing pair, event-stream digests, and a minimized forced
	// scheduler-decision prefix. See WithWitnesses and ReadWitness.
	Witness = witness.Witness
	// WitnessSpec names the replayable program source a witness re-executes
	// (see BugWitnessSpec, WorkloadWitnessSpec, OracleWitnessSpec).
	WitnessSpec = witness.ProgSpec
	// WitnessOptions configures witness generation on AnalysisOptions
	// (WithWitnesses fills it from the resolved trace options).
	WitnessOptions = core.WitnessOptions
	// WitnessOutcome is one report's generation result: the witness (nil if
	// none was found within budget), the rung that produced it, and the
	// replays spent.
	WitnessOutcome = witness.Outcome
	// WitnessReplay is the result of replaying a witness: OK, or a
	// human-readable drift list.
	WitnessReplay = witness.ReplayOutcome
)

// Driver kinds.
const (
	// VanillaDriver is the stock Linux PEBS driver model.
	VanillaDriver = driver.Vanilla
	// ProRaceDriver is the paper's redesigned driver.
	ProRaceDriver = driver.ProRace
)

// Replay modes.
const (
	// ReplayBasicBlock confines reconstruction to each sample's basic
	// block (the RaceZ baseline).
	ReplayBasicBlock = replay.ModeBasicBlock
	// ReplayForward runs forward replay only (§5.1).
	ReplayForward = replay.ModeForward
	// ReplayForwardBackward runs full ProRace reconstruction (§5.2).
	ReplayForwardBackward = replay.ModeForwardBackward
)

// Trace runs the online phase: execute the program on the simulated
// machine under the configured driver, collecting PEBS, PT and sync traces.
func Trace(p *Program, opts TraceOptions) (*TraceResult, error) {
	return core.TraceProgram(p, opts)
}

// Analyze runs the offline phase over a collected trace: PT decode and
// synthesis, memory-access reconstruction, and FastTrack detection. It is
// a thin wrapper over a single-segment Analyzer session — the same code
// path streamed ingest takes — sequential by default; set
// AnalysisOptions.Workers (or WithWorkers) to fan synthesis and
// reconstruction out across a worker pool, and AnalysisOptions.DetectShards
// (or WithDetectShards) to run address-sharded parallel detection.
func Analyze(p *Program, tr *TraceResult, opts AnalysisOptions) (*AnalysisResult, error) {
	a, err := core.NewAnalyzer(p, opts)
	if err != nil {
		return nil, err
	}
	if err := a.Feed(tr.Trace); err != nil {
		return nil, err
	}
	return a.Finish()
}

// NewAnalyzer opens a segment-resumable analysis session for one traced
// program: Feed it the run's trace in segments as they arrive (any cut
// points — see TraceSegment), read intermediate results with Snapshot, and
// seal it with Finish. The reports are byte-identical to one-shot Analyze
// over the concatenated trace at every Workers/DetectShards/path-cache
// configuration.
func NewAnalyzer(p *Program, opts AnalysisOptions) (*Analyzer, error) {
	return core.NewAnalyzer(p, opts)
}

// Run executes the complete pipeline.
func Run(p *Program, topts TraceOptions, aopts AnalysisOptions) (*Result, error) {
	return core.Run(p, topts, aopts)
}

// ProRaceTraceOptions returns the standard ProRace online configuration:
// the redesigned driver with PT enabled.
func ProRaceTraceOptions(period uint64, seed int64, mcfg MachineConfig) TraceOptions {
	return TraceOptions{Kind: ProRaceDriver, Period: period, Seed: seed, EnablePT: true, Machine: mcfg}
}

// DefaultAnalysisOptions returns the standard ProRace offline
// configuration: full forward+backward reconstruction with memory
// emulation, race feedback, and allocation tracking.
func DefaultAnalysisOptions() AnalysisOptions {
	return AnalysisOptions{Mode: ReplayForwardBackward}
}

// RaceZTraceOptions returns the RaceZ baseline's online configuration.
func RaceZTraceOptions(period uint64, seed int64, mcfg MachineConfig) TraceOptions {
	return racez.TraceOptions(period, seed, mcfg)
}

// RaceZAnalysisOptions returns the RaceZ baseline's offline configuration.
func RaceZAnalysisOptions() AnalysisOptions {
	return racez.AnalysisOptions()
}

// PARSEC returns the 13 CPU-bound benchmark workloads.
func PARSEC(scale int) []Workload { return workload.PARSEC(workload.Scale(scale)) }

// RealApps returns the eight real-application models of Table 1.
func RealApps(scale int) []Workload { return workload.RealApps(workload.Scale(scale)) }

// Workloads returns every built-in workload.
func Workloads(scale int) []Workload { return workload.All(workload.Scale(scale)) }

// WorkloadByName finds a built-in workload.
func WorkloadByName(name string, scale int) (Workload, error) {
	return workload.ByName(name, workload.Scale(scale))
}

// MustWorkload is WorkloadByName for known names; it panics otherwise.
func MustWorkload(name string, scale int) Workload {
	w, err := workload.ByName(name, workload.Scale(scale))
	if err != nil {
		panic(err)
	}
	return w
}

// WorkloadNames lists the built-in workload names.
func WorkloadNames() []string { return workload.Names() }

// Bugs returns the 12 planted races of the paper's Table 2.
func Bugs() []Bug { return bugs.All() }

// BugByID finds a Table 2 bug by its identifier (e.g. "apache-25520").
func BugByID(id string) (Bug, error) { return bugs.ByID(id) }

// BugWitnessSpec identifies a Table-2 bug program for witness generation.
func BugWitnessSpec(id string, scale int) WitnessSpec { return witness.BugSpec(id, scale) }

// WorkloadWitnessSpec identifies a built-in workload program for witness
// generation.
func WorkloadWitnessSpec(name string, scale int) WitnessSpec {
	return witness.WorkloadSpec(name, scale)
}

// OracleWitnessSpec identifies a generated differential-oracle program by
// its generator seed.
func OracleWitnessSpec(seed int64) WitnessSpec { return witness.OracleSpec(seed) }

// ReadWitness loads and decodes a witness file (the prorace-witness text
// format; see DecodeWitness for parsing bytes directly). Replay it with
// Witness.ReplayResolved, or from the command line with
// `prorace reproduce <file>`.
func ReadWitness(path string) (*Witness, error) { return witness.ReadFile(path) }

// DecodeWitness parses the versioned, checksummed prorace-witness text
// format. Corrupt or truncated input errors; it never replays a wrong
// schedule.
func DecodeWitness(data []byte) (*Witness, error) { return witness.Decode(data) }

// NewPathCache returns a decoded-path cache holding up to capacity traces,
// for analyses that want cache isolation via WithPathCache. Analyses that
// pass neither WithPathCache nor WithoutPathCache share a process-wide
// default cache.
func NewPathCache(capacity int) *PathCache { return synthesis.NewCache(capacity) }

// ParseFaultSpec parses a fault-injection spec of the form
// "kind=rate,kind=rate[:seed=N]" (kinds: trunc, ptflip, ptdrop, pebsloss,
// syncgap, torn); "" and "none" mean no injection.
func ParseFaultSpec(s string) (*FaultSpec, error) { return faultinject.Parse(s) }

// FormatRaces renders race reports with symbol names.
func FormatRaces(p *Program, rs []Report) string { return report.FormatRaces(p, rs) }

// FormatRace renders one race report with symbol names.
func FormatRace(p *Program, r Report) string { return report.FormatRace(p, r) }

// NewTelemetry returns an empty metrics registry. Pass it to runs via
// WithTelemetry (or the phase options' Telemetry fields); every pipeline
// stage then publishes its prorace_* series and stage spans into it.
// Expose it with ServeMetrics, render it with its WritePrometheus /
// WriteJSON / WriteTimeline methods, or read AnalysisResult.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// ServeMetrics starts an HTTP listener on addr (e.g. "localhost:9100",
// or ":0" for an ephemeral port — see Server.Addr) serving reg's
// Prometheus text at /metrics, expvar-style JSON at /debug/vars, a
// chrome://tracing timeline at /timeline, and net/http/pprof under
// /debug/pprof/. Close the returned server to release the port.
func ServeMetrics(addr string, reg *Telemetry) (*MetricsServer, error) {
	return telemetry.Serve(addr, reg)
}

// NewExperiments creates the evaluation harness that regenerates the
// paper's tables and figures.
func NewExperiments(cfg ExperimentConfig) *Experiments { return experiments.NewHarness(cfg) }

// QuickExperiments returns a configuration small enough for tests.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// FullExperiments returns the paper-scale configuration.
func FullExperiments() ExperimentConfig { return experiments.Full() }

// Program construction. NewProgram returns an assembler for building
// custom programs; see examples/quickstart for a complete racy program
// built this way.
type (
	// Builder assembles a program.
	Builder = asm.Builder
	// FuncBuilder emits instructions for one function.
	FuncBuilder = asm.FuncBuilder
	// Mem describes a memory operand.
	Mem = asm.Mem
	// Reg names a machine register (R0..R15).
	Reg = isa.Reg
)

// NewProgram returns a Builder for a custom program.
func NewProgram(name string) *Builder { return asm.New(name) }

// Memory operand constructors.
var (
	// MemBase addresses [reg + disp].
	MemBase = asm.Base
	// MemBaseIndex addresses [base + index*scale + disp].
	MemBaseIndex = asm.BaseIndex
	// MemGlobal addresses a named global PC-relatively.
	MemGlobal = asm.Global
	// MemAbs addresses an absolute location.
	MemAbs = asm.Abs
)

// General-purpose registers.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	R13 = isa.R13
	R14 = isa.R14
	R15 = isa.R15
)
