package prorace

// This file is the package's functional-options surface: one Option type
// covers both pipeline phases, so callers compose a configuration from
// named constructors instead of hand-assembling TraceOptions /
// AnalysisOptions structs and their Disable* booleans.
//
//	res, err := prorace.RunWith(w.Program,
//		prorace.WithMachine(w.Machine),
//		prorace.WithPeriod(1000),
//		prorace.WithSeed(7),
//		prorace.WithWorkers(-1),
//		prorace.WithDetectShards(8),
//	)
//
// NewOptions expands an option list over the standard ProRace defaults
// (redesigned driver, PT enabled, period 10000, full forward+backward
// reconstruction); TraceWith / AnalyzeWith / RunWith apply it in one call.
//
// Performance options never change results: WithWorkers, WithDetectShards,
// WithDetectWorkers, WithShadowTable, WithPathCache and WithoutPathCache
// all produce byte-identical race reports for a given trace (see the
// package's Determinism section; the guarantee is enforced by
// internal/oracle's metamorphic matrix).

// Option configures one pipeline run, spanning the online tracing phase
// and the offline analysis phase.
type Option func(*TraceOptions, *AnalysisOptions)

// NewOptions expands opts over the standard ProRace configuration and
// returns the two phase-option structs the explicit entry points take.
func NewOptions(opts ...Option) (TraceOptions, AnalysisOptions) {
	topts := TraceOptions{Kind: ProRaceDriver, Period: 10000, Seed: 1, EnablePT: true}
	aopts := AnalysisOptions{Mode: ReplayForwardBackward}
	for _, o := range opts {
		o(&topts, &aopts)
	}
	if aopts.Witnesses != nil {
		// Witness generation re-executes the traced run, so it inherits the
		// online configuration regardless of option order.
		aopts.Witnesses.Machine = topts.Machine
		aopts.Witnesses.DriverKind = topts.Kind
		aopts.Witnesses.EnablePT = topts.EnablePT
	}
	return topts, aopts
}

// WithMachine overrides the simulated machine configuration (cores, I/O
// latencies...).
func WithMachine(cfg MachineConfig) Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.Machine = cfg }
}

// WithPeriod sets the PEBS sampling period.
func WithPeriod(period uint64) Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.Period = period }
}

// WithSeed sets the scheduler seed; a (program, seed) pair reproduces
// exactly.
func WithSeed(seed int64) Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.Seed = seed }
}

// WithDriver selects the PEBS driver model (ProRaceDriver or
// VanillaDriver).
func WithDriver(kind DriverKind) Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.Kind = kind }
}

// WithDriverCosts overrides the driver stack's cycle-cost model.
func WithDriverCosts(costs DriverCosts) Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.Costs = &costs }
}

// WithoutPT turns off control-flow tracing (on by default).
func WithoutPT() Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.EnablePT = false }
}

// WithOverheadMeasurement additionally executes an untraced baseline run
// with the same seed, so TraceResult.Overhead can be reported.
func WithOverheadMeasurement() Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.MeasureOverhead = true }
}

// WithoutRandomFirstPeriod disables the ProRace driver's sampling-phase
// randomisation (ablation).
func WithoutRandomFirstPeriod() Option {
	return func(t *TraceOptions, _ *AnalysisOptions) { t.DisableRandomFirstPeriod = true }
}

// WithReplayMode selects the reconstruction algorithm (default
// ReplayForwardBackward, full ProRace).
func WithReplayMode(m ReplayMode) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.Mode = m }
}

// WithWorkers fans PT decoding and replay reconstruction out across a
// worker pool, streaming each thread into detection as it completes:
// 0 = sequential, negative = GOMAXPROCS, n > 0 = n workers.
func WithWorkers(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.Workers = n }
}

// WithDetectShards partitions detection state across shard workers by
// address hash: 0 or 1 = sequential FastTrack, negative = GOMAXPROCS,
// n > 1 = n shards. The reported race set is identical at any count.
func WithDetectShards(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DetectShards = n }
}

// WithDetectWorkers bounds the goroutines multiplexing the detection
// shards. Shards are CAS-claimed stripes, not goroutine-owned, so N
// shards can share M < N workers: 0 (the default) runs one worker per
// shard up to GOMAXPROCS. Ignored without WithDetectShards. The reported
// race set is identical at any worker count.
func WithDetectWorkers(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DetectWorkers = n }
}

// WithShadowTable pre-sizes the detector's flat shadow table for the
// expected number of distinct variables (addresses × allocation
// generations), avoiding growth-and-reinsert cycles on million-variable
// traces. 0 starts small and grows on demand; the hint never changes
// results.
func WithShadowTable(variables int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.ShadowCapacityHint = variables }
}

// WithMaxReports bounds the race report list.
func WithMaxReports(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.MaxReports = n }
}

// WithoutMemoryEmulation turns off the §5.1 program-map memory emulation
// (ablation).
func WithoutMemoryEmulation() Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DisableMemoryEmulation = true }
}

// WithoutRaceFeedback turns off the §5.1 invalidate-and-regenerate loop
// for racy emulated locations (ablation).
func WithoutRaceFeedback() Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DisableRaceFeedback = true }
}

// WithoutAllocationTracking turns off malloc/free generation tracking
// (ablation; reintroduces the §4.3 address-reuse false positive).
func WithoutAllocationTracking() Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DisableAllocationTracking = true }
}

// WithStrict makes the offline phase abort on the first decode error or
// thread failure instead of degrading gracefully. The library default is
// lenient: corrupt PT regions are skipped (recorded as decode gaps),
// failing threads are dropped with their sync records retained, and
// everything given up is accounted in AnalysisResult.Degradation.
func WithStrict() Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.Strict = true }
}

// WithFaultInjection deterministically corrupts the collected trace before
// analysis — the robustness-testing hook. A nil spec is a no-op.
func WithFaultInjection(spec *FaultSpec) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.FaultSpec = spec }
}

// WithPathCache routes the analysis's decoded-path lookups through cache
// instead of the shared process-wide default, isolating its contents (and
// hit/miss counters) to the analyses that share it.
func WithPathCache(cache *PathCache) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.PathCache = cache }
}

// WithoutPathCache disables decoded-path memoization: every analysis
// re-decodes PT and re-synthesises thread paths from scratch (ablation, and
// the honest configuration for decode-cost measurements).
func WithoutPathCache() Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.DisablePathCache = true }
}

// WithTelemetry routes both phases' metrics and stage spans into reg (see
// NewTelemetry). A nil registry keeps telemetry disabled — the default,
// which adds zero allocations to the pipeline's hot paths. The registry's
// snapshot is attached to AnalysisResult.Telemetry.
func WithTelemetry(reg *Telemetry) Option {
	return func(t *TraceOptions, a *AnalysisOptions) {
		t.Telemetry = reg
		a.Telemetry = reg
	}
}

// WithMetricsAddr guarantees a live telemetry HTTP listener on addr
// (e.g. "localhost:9100") for the run, serving Prometheus text at
// /metrics, expvar-style JSON at /debug/vars, a chrome://tracing timeline
// at /timeline, and net/http/pprof under /debug/pprof/. If no registry
// was supplied via WithTelemetry, the process-wide default registry is
// enabled and served. The listener is shared: repeated runs with the same
// addr reuse one server.
func WithMetricsAddr(addr string) Option {
	return func(t *TraceOptions, a *AnalysisOptions) {
		t.MetricsAddr = addr
		a.MetricsAddr = addr
	}
}

// WithSegmentSize routes the analysis through the segment-resumable
// session layer, feeding the trace in chunks of at most n serialised bytes
// (AnalysisOptions.SegmentSize). Results are byte-identical to the
// whole-trace default; the option exists to exercise — and measure — the
// exact path streamed ingest (cmd/proraced) uses.
func WithSegmentSize(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.SegmentSize = n }
}

// WithWitnesses asks the offline phase to attach a deterministic
// reproduction recipe — a witness — to every race report
// (Report.Witness, serialized; AnalysisResult.Witnesses, structured).
// spec names the replayable program source the trace came from
// (BugWitnessSpec, WorkloadWitnessSpec or OracleWitnessSpec): witnesses
// name their program and pin it with a fingerprint, they do not embed
// it. The machine configuration, driver kind and PT setting of the
// witnessed run are taken from the resolved trace options, so the option
// composes with WithMachine / WithDriver / WithoutPT in any order.
// Witness generation replays the program (bounded by WithWitnessBudget)
// and never changes which races are reported.
func WithWitnesses(spec WitnessSpec) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) {
		if a.Witnesses == nil {
			a.Witnesses = &WitnessOptions{}
		}
		a.Witnesses.Spec = spec
	}
}

// WithWitnessBudget caps the number of replays witness generation may
// spend per report (0 = the default budget). Implies nothing without
// WithWitnesses.
func WithWitnessBudget(replays int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) {
		if a.Witnesses == nil {
			a.Witnesses = &WitnessOptions{}
		}
		a.Witnesses.Budget = replays
	}
}

// WithThreadRetries sets how many extra attempts a transiently-failing
// per-thread stage gets before the thread is dropped (lenient) or the
// analysis aborts (strict). 0 means the default of one retry; negative
// disables retries.
func WithThreadRetries(n int) Option {
	return func(_ *TraceOptions, a *AnalysisOptions) { a.ThreadRetries = n }
}

// TraceWith runs the online phase with functional options.
func TraceWith(p *Program, opts ...Option) (*TraceResult, error) {
	topts, _ := NewOptions(opts...)
	return Trace(p, topts)
}

// AnalyzeWith runs the offline phase over a collected trace with
// functional options.
func AnalyzeWith(p *Program, tr *TraceResult, opts ...Option) (*AnalysisResult, error) {
	_, aopts := NewOptions(opts...)
	return Analyze(p, tr, aopts)
}

// RunWith executes the complete pipeline with functional options.
func RunWith(p *Program, opts ...Option) (*Result, error) {
	topts, aopts := NewOptions(opts...)
	return Run(p, topts, aopts)
}

// NewAnalyzerWith opens a segment-resumable analysis session with
// functional options (see NewAnalyzer for the session contract).
func NewAnalyzerWith(p *Program, opts ...Option) (*Analyzer, error) {
	_, aopts := NewOptions(opts...)
	return NewAnalyzer(p, aopts)
}
